"""The batch advisor session: execute solve requests with shared state.

:class:`AdvisorSession` is the long-lived, multi-request counterpart of the
one-shot :class:`~repro.core.advisor.ClouDiA` pipeline.  It adds three
things the paper's service framing needs at scale:

* **Compilation deduplication** — problems are canonicalized by the
  content hash of their ``(graph, costs)`` pair
  (:meth:`~repro.core.problem.DeploymentProblem.instance_key`), so a batch
  of requests over the same instance — different solvers, objectives,
  budgets, or problems deserialized from separate JSON files — lowers the
  instance into the vectorized engine exactly once.
* **An opt-in worker pool** — :meth:`AdvisorSession.solve_many` can run
  independent requests on a thread pool (``max_workers``); response order
  matches request order regardless of scheduling.  The default is
  sequential, because the exact solvers are GIL-bound searches under
  wall-clock budgets — threading them degrades each request's effective
  budget; the pool pays off for engine-dominated (NumPy) request mixes.
* **Telemetry** — every response carries per-request
  :class:`~repro.api.schema.SolveTelemetry` (compile cache hit, compile /
  solve / total time, and whether the constraint-repair fallback fired —
  always ``False`` for the natively constraint-aware built-in solvers),
  and the session aggregates :class:`SessionStats` so a server can export
  hit rates.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..core.communication_graph import CommunicationGraph
from ..core.cost_matrix import CostMatrix
from ..core.errors import ClouDiAError, InvalidDeploymentError, StoreError
from ..core.evaluation import (
    CompileCacheStats,
    compile_cache_stats,
    peek_compiled,
    resolve_workers,
)
from ..core.parallel import ParallelStats, parallel_stats
from ..core.deployment import DeploymentPlan
from ..core.problem import DeploymentProblem
from ..netmeasure.stream import CostRevision, relative_link_drift
from ..solvers.base import SearchBudget, SolverResult
from ..solvers.registry import SolverRegistry, default_registry
from .cache import ResultCache
from .schema import AUTO_SOLVER, SolveRequest, SolverResponse, SolveTelemetry
from .watch import (
    REASON_DEGRADATION,
    REASON_DRIFT,
    REASON_HELD,
    REASON_INITIAL,
    WatchEvent,
    WatchPolicy,
    WatchReport,
)

if TYPE_CHECKING:  # pragma: no cover - annotation only, avoids a cycle
    from ..store import SQLiteResultCache

#: Hard cap on worker threads; solving is CPU-bound, so more threads than
#: a small multiple of the core count only adds contention.
_MAX_WORKERS = 8


@dataclass(frozen=True)
class SessionStats:
    """Aggregate counters of one advisor session."""

    #: Requests executed (successful or failed).
    requests: int = 0
    #: Distinct ``(graph, costs)`` pairs compiled by this session.
    compilations: int = 0
    #: Requests that reused a previously compiled pair.
    compile_cache_hits: int = 0
    #: Cost revisions adopted via an in-place engine refresh during
    #: :meth:`AdvisorSession.watch` (the graph-side lowering was reused).
    cost_refreshes: int = 0
    #: Cost revisions that needed a full recompile (no live engine).
    cost_recompiles: int = 0
    #: Watch steps that ran a solver (initial solves and re-solves).
    watch_resolves: int = 0
    #: Watch steps answered by the persistent result cache.
    result_cache_hits: int = 0
    #: Process-wide compiled-engine LRU counters (shared by every session
    #: in this process; see :func:`repro.core.compile_cache_stats`).
    engine_cache: CompileCacheStats = field(default_factory=CompileCacheStats)
    #: Process-wide parallel-evaluation counters — thread and worker-process
    #: batch calls, pool sizes, shared-memory attach/refresh tallies (see
    #: :func:`repro.core.parallel_stats`).
    parallel: ParallelStats = field(default_factory=ParallelStats)

    @property
    def hit_rate(self) -> float:
        """Fraction of requests served from the compilation cache."""
        total = self.compilations + self.compile_cache_hits
        return self.compile_cache_hits / total if total else 0.0

    def to_dict(self) -> dict:
        """JSON-serializable snapshot of every counter.

        The supported way for telemetry exporters (the service's
        ``/metrics`` route, log shippers) to serialise session state —
        including the nested process-wide ``engine_cache`` counters —
        without reaching into private attributes.
        """
        return {
            "requests": self.requests,
            "compilations": self.compilations,
            "compile_cache_hits": self.compile_cache_hits,
            "compile_hit_rate": self.hit_rate,
            "cost_refreshes": self.cost_refreshes,
            "cost_recompiles": self.cost_recompiles,
            "watch_resolves": self.watch_resolves,
            "result_cache_hits": self.result_cache_hits,
            "engine_cache": self.engine_cache.to_dict(),
            "parallel": self.parallel.to_dict(),
        }


class AdvisorSession:
    """Executes :class:`~repro.api.schema.SolveRequest` batches.

    Args:
        registry: solver registry to resolve solver keys through; defaults
            to the process-wide :data:`~repro.solvers.registry.default_registry`.
        max_workers: worker threads for :meth:`solve_many`; the default of
            ``None`` runs requests sequentially (see :meth:`solve_many` for
            why that is the reproducibility-preserving choice).
        max_cached_problems: bound on the number of distinct problem
            instances whose canonical graph / costs (and thereby compiled
            engines) the session keeps alive; least-recently-used entries
            are evicted beyond it, so a long-lived serving session does not
            grow without bound.  An evicted instance is simply recompiled
            if it is submitted again.
        result_cache: optional persistent solver-result cache — a
            :class:`~repro.api.cache.ResultCache`, a durable
            :class:`~repro.store.SQLiteResultCache` (or anything else
            satisfying their ``get`` / ``put`` / ``stats`` protocol), or a
            directory path a JSON ``ResultCache`` is created at.  Used by
            :meth:`watch` to skip re-solving revisions this or any sibling
            process already solved — entries are keyed on the problem
            fingerprint plus solver key, so restarted sessions resume
            where they left off.  A store-backed cache additionally
            persists watch history and solve telemetry.
        eval_workers: session-wide default for the evaluation-parallelism
            knob of :class:`~repro.solvers.base.SearchBudget` (``"auto"``,
            a positive int, or ``"procs[:N]"`` for the shared-memory
            worker-process pool).  Applied to every request whose budget does
            not set ``workers`` itself (including requests without a
            budget); a request budget with an explicit ``workers`` wins.
            Batch scoring stays bit-identical at any setting, so this only
            changes wall-clock, never results.
        peek_block: session-wide default for the neighborhood block-size
            knob of :class:`~repro.solvers.base.SearchBudget` — how many
            candidate moves the block-scored search solvers draw and
            batch-peek per pass (``1`` disables batching).  Applied to
            every request whose budget does not set ``peek_block`` itself;
            an explicit request value wins.  Like ``eval_workers``, this
            only changes wall-clock, never results: default-mode
            trajectories are bit-identical at any block size.
    """

    def __init__(self, registry: Optional[SolverRegistry] = None,
                 max_workers: Optional[int] = None,
                 max_cached_problems: int = 128,
                 result_cache: Optional[Union[
                     ResultCache, "SQLiteResultCache", str, Path]] = None,
                 eval_workers: Optional[Union[int, str]] = None,
                 peek_block: Optional[int] = None):
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if max_cached_problems < 1:
            raise ValueError("max_cached_problems must be >= 1")
        if eval_workers is not None:
            resolve_workers(eval_workers)  # validate at construction time
        if peek_block is not None and (
                not isinstance(peek_block, int)
                or isinstance(peek_block, bool) or peek_block < 1):
            raise ValueError("peek_block must be a positive integer")
        self.registry = registry if registry is not None else default_registry
        self.max_workers = max_workers
        self.eval_workers = eval_workers
        self.peek_block = peek_block
        self.max_cached_problems = max_cached_problems
        if isinstance(result_cache, (str, Path)):
            result_cache = ResultCache(result_cache)
        self.result_cache = result_cache
        self._lock = threading.Lock()
        #: Canonical (graph, costs) objects per instance content hash, in
        #: LRU order; the process-wide compile cache is keyed on object
        #: identity, so re-binding content-equal problems to these objects
        #: makes them share one CompiledProblem.
        self._canonical: "OrderedDict[str, Tuple[CommunicationGraph, CostMatrix]]" = (
            OrderedDict()
        )
        #: Per-instance-key locks serialising the (expensive) first
        #: compilation of each distinct pair across worker threads, so
        #: distinct instances compile in parallel while the same instance
        #: still compiles exactly once.
        self._compile_locks: dict = {}
        self._requests = 0
        self._compilations = 0
        self._cache_hits = 0
        self._cost_refreshes = 0
        self._cost_recompiles = 0
        self._watch_resolves = 0
        self._result_cache_hits = 0

    # ------------------------------------------------------------------ #

    @property
    def stats(self) -> SessionStats:
        """Aggregate counters since the session was created.

        ``engine_cache`` reports the process-wide compiled-engine LRU
        (hits, misses, evictions, current size) — shared by every session
        in the process, bounded so streaming workloads cannot leak one
        compilation per cost revision.
        """
        with self._lock:
            return SessionStats(
                requests=self._requests,
                compilations=self._compilations,
                compile_cache_hits=self._cache_hits,
                cost_refreshes=self._cost_refreshes,
                cost_recompiles=self._cost_recompiles,
                watch_resolves=self._watch_resolves,
                result_cache_hits=self._result_cache_hits,
                engine_cache=compile_cache_stats(),
                parallel=parallel_stats(),
            )

    def prepare(self, problem: DeploymentProblem
                ) -> Tuple[DeploymentProblem, bool, threading.Lock]:
        """Canonicalize ``problem`` against the session's instance cache.

        Canonicalization is cheap (a content hash plus dictionary
        bookkeeping); the expensive lowering happens lazily at
        ``problem.compiled()`` under the returned per-instance lock, which
        lets a batch compile *distinct* instances in parallel on the worker
        pool while still compiling each distinct instance exactly once.

        Returns:
            ``(canonical_problem, cache_hit, compile_lock)`` where
            ``cache_hit`` says whether an earlier request already
            canonicalized the same ``(graph, costs)`` content.
        """
        key = problem.instance_key()
        with self._lock:
            canonical = self._canonical.get(key)
            hit = canonical is not None
            if hit:
                self._cache_hits += 1
                self._canonical.move_to_end(key)
                problem = problem.rebound(*canonical)
            else:
                self._canonical[key] = (problem.graph, problem.costs)
                self._compilations += 1
                while len(self._canonical) > self.max_cached_problems:
                    evicted, _ = self._canonical.popitem(last=False)
                    self._compile_locks.pop(evicted, None)
            lock = self._compile_locks.setdefault(key, threading.Lock())
        return problem, hit, lock

    def clear_cache(self) -> None:
        """Drop all canonical problem references held by the session.

        The process-wide compile cache is weakly keyed, so releasing the
        canonical cost matrices lets their compiled engines be reclaimed.
        """
        with self._lock:
            self._canonical.clear()
            self._compile_locks.clear()

    # ------------------------------------------------------------------ #

    def solve(self, request: SolveRequest) -> SolverResponse:
        """Execute one request; solver errors propagate to the caller."""
        request = self._with_assigned_id(request)
        prepared = self.prepare(request.problem)
        return self._execute(request, prepared, capture_errors=False)

    def solve_many(self, requests: Iterable[SolveRequest],
                   max_workers: Optional[int] = None
                   ) -> List[SolverResponse]:
        """Execute a batch of independent requests.

        Problems are canonicalized up front, then the worker pool compiles
        and solves them — each distinct ``(graph, costs)`` pair is compiled
        exactly once within the batch (a per-instance lock serialises
        same-instance compiles; distinct instances compile concurrently).
        A per-batch memo upholds that guarantee even when the batch holds
        more distinct instances than ``max_cached_problems``, where the
        session-level LRU alone would evict and recompile.  Failures are
        captured per request as ``"error"`` responses instead of aborting
        the batch, and response order matches request order.

        Requests run **sequentially by default**: the exact solvers are
        GIL-bound Python searches under *wall-clock* budgets, so splitting
        one interpreter across threads silently degrades every request's
        effective budget and makes seeded runs irreproducible across batch
        sizes.  Opt into threads with ``max_workers`` when the requests
        are dominated by engine (NumPy) work or are not time-budgeted.
        """
        batch: List[SolveRequest] = [
            self._with_assigned_id(request) for request in requests
        ]
        if not batch:
            return []
        memo: dict = {}
        prepared = []
        for request in batch:
            key = request.problem.instance_key()
            entry = memo.get(key)
            if entry is not None:
                canonical, lock = entry
                with self._lock:
                    self._cache_hits += 1
                prepared.append((
                    request.problem.rebound(canonical.graph, canonical.costs),
                    True, lock,
                ))
            else:
                item = self.prepare(request.problem)
                memo[key] = (item[0], item[2])
                prepared.append(item)
        workers = max_workers if max_workers is not None else self.max_workers
        if workers is None:
            workers = 1
        workers = max(1, min(workers, len(batch), _MAX_WORKERS))
        if workers == 1:
            return [
                self._execute(request, prep, capture_errors=True)
                for request, prep in zip(batch, prepared)
            ]
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(
                lambda pair: self._execute(pair[0], pair[1],
                                           capture_errors=True),
                zip(batch, prepared),
            ))

    # ------------------------------------------------------------------ #
    # Live re-deployment
    # ------------------------------------------------------------------ #

    def watch(self, problem: DeploymentProblem,
              revisions: Iterable[Union[CostRevision, CostMatrix]],
              policy: Optional[WatchPolicy] = None,
              initial_plan: Optional[DeploymentPlan] = None) -> WatchReport:
        """Track a stream of cost revisions, re-solving only when it pays.

        The live re-deployment loop: ``problem`` is solved once (warm from
        ``initial_plan`` when given), then every revision — a
        :class:`~repro.netmeasure.CostRevision` from a
        :class:`~repro.netmeasure.MeasurementStream`, or a bare
        :class:`~repro.core.CostMatrix` — is adopted by *refreshing* the
        compiled engine in place (the graph-side lowering and compiled
        constraints are reused; only the dense cost array changes), the
        incumbent plan is re-scored under the revised costs, and a
        re-solve runs only when the policy's drift or degradation
        threshold is exceeded.  Re-solves are warm-started from the
        incumbent (for solvers that support it) and short-circuited by the
        session's persistent result cache, so a restarted watch — or a
        sibling process — skips revisions that were already solved.

        Args:
            problem: the deployment problem as last solved/deployed.
            revisions: cost revisions in arrival order.
            policy: re-solve policy; defaults to :class:`WatchPolicy`.
            initial_plan: the currently deployed plan, when one exists;
                it seeds the initial solve.

        Returns:
            A :class:`WatchReport` with the final recommendation and the
            full per-revision event log.
        """
        policy = policy if policy is not None else WatchPolicy()
        solver_key = self.registry.resolve(
            None if policy.solver == AUTO_SOLVER else policy.solver,
            problem.objective,
        )
        warm_capable = self.registry.spec(solver_key).supports_warm_start
        events: List[WatchEvent] = []
        #: The fingerprint the run is keyed on in durable watch history
        #: (each adopted revision gets its own, recorded per event).
        root_fingerprint = problem.fingerprint()

        # Initial solve: establish the incumbent (never a "hold").
        compile_started = time.perf_counter()
        problem.compiled()
        refresh_time = time.perf_counter() - compile_started
        incumbent_cost = (problem.evaluate(initial_plan)
                          if initial_plan is not None else float("inf"))
        plan, cost, result, event = self._watch_step(
            problem, solver_key, policy, warm_capable,
            warm_plan=initial_plan, revision=0, reason=REASON_INITIAL,
            drift=0.0, refresh_time_s=refresh_time, engine_refreshed=False,
            incumbent_plan=initial_plan, incumbent_cost=incumbent_cost,
        )
        events.append(event)

        for number, item in enumerate(revisions, start=1):
            costs = item.costs if isinstance(item, CostRevision) else item
            if costs.instance_ids != problem.costs.instance_ids:
                # A changed instance pool is a re-allocation, not a cost
                # drift: the incumbent plan may not even map onto it.
                raise ClouDiAError(
                    f"cost revision {number} covers a different instance "
                    f"set; watch() tracks cost drift over a fixed "
                    f"allocation — construct a new DeploymentProblem for "
                    f"a re-allocation"
                )
            if isinstance(item, CostRevision):
                drift = item.max_drift
            else:
                drift = float(relative_link_drift(problem.costs, costs).max())
            refresh_started = time.perf_counter()
            # Same instances (guaranteed above, and by construction for
            # stream revisions), so revise() refreshes in place whenever a
            # live engine exists — one condition, mirroring revise itself.
            refreshable = peek_compiled(problem.graph, problem.costs) is not None
            problem = problem.revise(costs=costs)
            incumbent_cost = problem.evaluate(plan)  # compiles if needed
            refresh_time = time.perf_counter() - refresh_started
            with self._lock:
                if refreshable:
                    self._cost_refreshes += 1
                else:
                    self._cost_recompiles += 1

            degradation = ((incumbent_cost - cost) / cost if cost > 0
                           else float("inf") if incumbent_cost > cost
                           else 0.0)
            if drift >= policy.drift_threshold:
                reason = REASON_DRIFT
            elif degradation >= policy.degradation_threshold:
                reason = REASON_DEGRADATION
            else:
                reason = REASON_HELD

            if reason == REASON_HELD:
                cost = incumbent_cost
                events.append(WatchEvent(
                    revision=number, reason=REASON_HELD, drift=drift,
                    refresh_time_s=refresh_time,
                    engine_refreshed=refreshable,
                    incumbent_cost=incumbent_cost, resolved=False,
                    cache_hit=False, warm_start=False, solve_time_s=0.0,
                    cost=cost, redeployed=False, solver=solver_key,
                    fingerprint=problem.fingerprint(),
                ))
                continue

            plan, cost, result, event = self._watch_step(
                problem, solver_key, policy, warm_capable, warm_plan=plan,
                revision=number, reason=reason, drift=drift,
                refresh_time_s=refresh_time, engine_refreshed=refreshable,
                incumbent_plan=plan, incumbent_cost=incumbent_cost,
            )
            events.append(event)

        report = WatchReport(problem=problem, plan=plan, cost=cost,
                             result=result, events=events)
        # A store-backed result cache keeps the re-deployment log durable:
        # the events become queryable history rows, not just this report.
        history = getattr(self.result_cache, "history", None)
        if history is not None:
            history.record_report(report, solver=solver_key,
                                  root_fingerprint=root_fingerprint)
        return report

    def _watch_step(self, problem: DeploymentProblem, solver_key: str,
                    policy: WatchPolicy, warm_capable: bool,
                    warm_plan: Optional[DeploymentPlan], revision: int,
                    reason: str, drift: float, refresh_time_s: float,
                    engine_refreshed: bool,
                    incumbent_plan: Optional[DeploymentPlan],
                    incumbent_cost: float
                    ) -> Tuple[DeploymentPlan, float,
                               Optional[SolverResult], WatchEvent]:
        """Solve one watch step (cache first), keeping the better incumbent."""
        fingerprint = problem.fingerprint()
        cache_tag = self._solver_cache_tag(solver_key, policy)
        warm = policy.warm_start and warm_capable and warm_plan is not None
        cached = self._cached_result(problem, fingerprint, cache_tag)
        if cached is not None:
            result, solve_time, cache_hit = cached, 0.0, True
            candidate_cost = problem.evaluate(result.plan)
            with self._lock:
                self._result_cache_hits += 1
        else:
            request = SolveRequest(
                problem=problem, solver=solver_key,
                config=policy.config, budget=policy.budget,
                initial_plan=warm_plan if warm else None,
            )
            response = self.solve(request)
            result = response.result
            solve_time = result.solve_time_s
            cache_hit = False
            candidate_cost = result.cost
            with self._lock:
                self._watch_resolves += 1
            if self.result_cache is not None:
                record_problem = getattr(self.result_cache,
                                         "record_problem", None)
                if record_problem is not None:
                    record_problem(problem)
                self.result_cache.put(fingerprint, cache_tag, result)

        # Keep the incumbent when the step did not strictly improve on it
        # (a cold or cached plan may be worse than the plan in production).
        if incumbent_plan is not None and incumbent_cost <= candidate_cost:
            plan, cost, redeployed = incumbent_plan, incumbent_cost, False
        else:
            plan, cost = result.plan, candidate_cost
            redeployed = (incumbent_plan is not None
                          and plan.as_dict() != incumbent_plan.as_dict())
        event = WatchEvent(
            revision=revision, reason=reason, drift=drift,
            refresh_time_s=refresh_time_s, engine_refreshed=engine_refreshed,
            incumbent_cost=incumbent_cost, resolved=True,
            cache_hit=cache_hit, warm_start=warm and not cache_hit,
            solve_time_s=solve_time, cost=cost, redeployed=redeployed,
            solver=solver_key, fingerprint=fingerprint,
        )
        return plan, cost, result, event

    @staticmethod
    def _solver_cache_tag(solver_key: str, policy: WatchPolicy) -> str:
        """The solver component of the persistent cache key.

        The problem fingerprint covers everything solver-independent; this
        tag covers the run configuration — solver key plus a digest of the
        policy's solver config (seed included) and budget — so watches
        sharing a cache directory only reuse each other's results when
        they would have executed the same solve.
        """
        payload = json.dumps(
            {
                "config": {key: policy.config[key]
                           for key in sorted(policy.config)},
                "budget": None if policy.budget is None
                else policy.budget.to_dict(),
            },
            sort_keys=True, default=repr,
        )
        digest = hashlib.sha256(payload.encode()).hexdigest()[:16]
        return f"{solver_key}.{digest}"

    def _cached_result(self, problem: DeploymentProblem, fingerprint: str,
                       cache_tag: str) -> Optional[SolverResult]:
        """A validated persistent-cache entry for the revision, or ``None``."""
        if self.result_cache is None:
            return None
        result = self.result_cache.get(fingerprint, cache_tag)
        if result is None:
            return None
        try:
            problem.check_plan(result.plan)
        except InvalidDeploymentError:
            # A corrupt or foreign entry must degrade to a miss, never
            # into recommending an infeasible plan.
            return None
        return result

    # ------------------------------------------------------------------ #

    def _effective_budget(self,
                          budget: Optional[SearchBudget]
                          ) -> Optional[SearchBudget]:
        """Fold the session's engine defaults into a request budget.

        ``eval_workers`` and ``peek_block`` are applied independently: a
        budget that already pins a knob keeps its value, and everything
        passes through untouched when the session has no defaults.  A
        ``None`` budget becomes a budget carrying only the knobs; solvers
        default the missing limits through
        :func:`~repro.solvers.base.default_limits`, which recognises a
        knob-only budget and keeps their usual time caps in place.
        """
        if self.eval_workers is None and self.peek_block is None:
            return budget
        if budget is None:
            return SearchBudget(workers=self.eval_workers,
                                peek_block=self.peek_block)
        updates = {}
        if self.eval_workers is not None and budget.workers is None:
            updates["workers"] = self.eval_workers
        if self.peek_block is not None and budget.peek_block is None:
            updates["peek_block"] = self.peek_block
        return replace(budget, **updates) if updates else budget

    def _with_assigned_id(self, request: SolveRequest) -> SolveRequest:
        with self._lock:
            sequence = self._requests
            self._requests += 1
        if request.request_id is not None:
            return request
        return request.with_id(f"req-{sequence:04d}")

    def _execute(self, request: SolveRequest,
                 prepared: Tuple[DeploymentProblem, bool, threading.Lock],
                 capture_errors: bool) -> SolverResponse:
        problem, cache_hit, compile_lock = prepared
        started = time.perf_counter()
        solver_key = request.solver
        compile_time = 0.0
        try:
            with compile_lock:
                compile_started = time.perf_counter()
                problem.compiled()
                compile_time = time.perf_counter() - compile_started
            solver_key = request.resolved_solver_key(self.registry)
            solver = self.registry.make(solver_key, **dict(request.config))
            result = solver.solve(problem,
                                  budget=self._effective_budget(request.budget),
                                  initial_plan=request.initial_plan)
            telemetry = SolveTelemetry(
                compile_cache_hit=cache_hit,
                compile_time_s=compile_time,
                solve_time_s=result.solve_time_s,
                total_time_s=time.perf_counter() - started,
                repair_applied=result.repair_applied,
            )
            response = SolverResponse(
                request_id=request.request_id, solver=solver_key,
                status="ok", result=result, telemetry=telemetry,
            )
        except (ClouDiAError, ValueError, TypeError) as exc:
            if not capture_errors:
                raise
            telemetry = SolveTelemetry(
                compile_cache_hit=cache_hit,
                compile_time_s=compile_time,
                total_time_s=time.perf_counter() - started,
            )
            response = SolverResponse(
                request_id=request.request_id, solver=solver_key,
                status="error", error=f"{type(exc).__name__}: {exc}",
                telemetry=telemetry,
            )
        self._record_telemetry(problem, response)
        return response

    def _record_telemetry(self, problem: DeploymentProblem,
                          response: SolverResponse) -> None:
        """Append the response to a store-backed cache's telemetry stream.

        Best effort: telemetry is observability, so a store failure (lock
        timeout, full disk) must not fail the solve that produced the
        response.
        """
        recorder = getattr(self.result_cache, "record_telemetry", None)
        if recorder is None:
            return
        try:
            recorder(problem.fingerprint(), response)
        except StoreError:
            pass


def solve_requests(requests: Sequence[SolveRequest],
                   registry: Optional[SolverRegistry] = None,
                   max_workers: Optional[int] = None) -> List[SolverResponse]:
    """One-shot convenience wrapper around a throwaway session."""
    session = AdvisorSession(registry=registry, max_workers=max_workers)
    return session.solve_many(requests, max_workers=max_workers)
