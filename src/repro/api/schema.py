"""Serializable request / response pair of the solving service.

A :class:`SolveRequest` bundles everything one solver run needs — the
:class:`~repro.core.problem.DeploymentProblem`, the solver key (resolved
through a :class:`~repro.solvers.registry.SolverRegistry`), its typed
config, an optional :class:`~repro.solvers.base.SearchBudget` and warm
start.  A :class:`SolverResponse` carries the
:class:`~repro.solvers.base.SolverResult` back together with per-request
:class:`SolveTelemetry` (timing, compilation cache hit).

Both objects round-trip losslessly through :meth:`to_dict` /
:meth:`from_dict`, which is what lets the CLI run the whole pipeline from
JSON artifacts and lets responses be archived next to benchmark results.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, Mapping, Optional

from ..core.deployment import DeploymentPlan
from ..core.errors import ClouDiAError
from ..core.problem import DeploymentProblem
from ..solvers.base import SearchBudget, SolverResult
from ..solvers.registry import SolverRegistry

#: Key requesting the paper-default solver for the problem's objective.
AUTO_SOLVER = "auto"

#: Version tag embedded in serialized requests / responses.
API_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class SolveRequest:
    """One solving request against the advisor service.

    Attributes:
        problem: the deployment problem to solve.
        solver: registry key of the solver to run, or ``"auto"`` for the
            paper default of the problem's objective.
        config: solver configuration (validated against the factory
            signature by the registry, e.g. ``{"seed": 7}``).
        budget: optional time / iteration limits.
        initial_plan: optional warm-start plan.
        request_id: caller-chosen identifier echoed in the response; the
            session assigns sequential ids when omitted.
    """

    problem: DeploymentProblem
    solver: str = AUTO_SOLVER
    config: Mapping[str, Any] = field(default_factory=dict)
    budget: Optional[SearchBudget] = None
    initial_plan: Optional[DeploymentPlan] = None
    request_id: Optional[str] = None

    def resolved_solver_key(self, registry: SolverRegistry) -> str:
        """The concrete registry key this request runs under."""
        return registry.resolve(self.solver, self.problem.objective)

    def with_id(self, request_id: str) -> "SolveRequest":
        """Copy of the request with ``request_id`` set."""
        return replace(self, request_id=request_id)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable representation."""
        payload: Dict[str, Any] = {
            "version": API_SCHEMA_VERSION,
            "problem": self.problem.to_dict(),
            "solver": self.solver,
        }
        if self.config:
            payload["config"] = dict(self.config)
        if self.budget is not None:
            payload["budget"] = self.budget.to_dict()
        if self.initial_plan is not None:
            payload["initial_plan"] = self.initial_plan.to_dict()
        if self.request_id is not None:
            payload["request_id"] = self.request_id
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SolveRequest":
        """Rebuild a request from :meth:`to_dict` output."""
        _require_mapping(payload, "solve request")
        _check_version(payload, "request")
        if "problem" not in payload:
            raise ClouDiAError("solve request payload misses 'problem'")
        budget = payload.get("budget")
        initial_plan = payload.get("initial_plan")
        return cls(
            problem=DeploymentProblem.from_dict(payload["problem"]),
            solver=payload.get("solver", AUTO_SOLVER),
            config=dict(payload.get("config", {})),
            budget=None if budget is None else SearchBudget.from_dict(budget),
            initial_plan=None if initial_plan is None
            else DeploymentPlan.from_dict(initial_plan),
            request_id=payload.get("request_id"),
        )


@dataclass(frozen=True)
class SolveTelemetry:
    """Per-request bookkeeping recorded by the advisor session.

    Attributes:
        compile_cache_hit: whether this request reused a compilation
            produced for an earlier request of the same session (content
            equality on the ``(graph, costs)`` pair).
        compile_time_s: wall-clock time spent obtaining the compiled
            problem (≈0 on a cache hit).
        solve_time_s: the solver's own reported search time.
        total_time_s: end-to-end time the session spent on the request.
        repair_applied: whether the *base class's* constraint-repair
            fallback fired on the returned plan.  ``False`` for every
            natively constraint-aware solver (all built-ins on their
            engine paths — including the rare dead-end cases they resolve
            internally with the same matching); ``True`` flags the legacy
            fallback path, where a constraint-blind search result was
            repaired after the fact.
    """

    compile_cache_hit: bool = False
    compile_time_s: float = 0.0
    solve_time_s: float = 0.0
    total_time_s: float = 0.0
    repair_applied: bool = False

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable representation."""
        return {
            "compile_cache_hit": self.compile_cache_hit,
            "compile_time_s": self.compile_time_s,
            "solve_time_s": self.solve_time_s,
            "total_time_s": self.total_time_s,
            "repair_applied": self.repair_applied,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SolveTelemetry":
        """Rebuild telemetry from :meth:`to_dict` output."""
        _require_mapping(payload, "solve telemetry")
        return cls(
            compile_cache_hit=payload.get("compile_cache_hit", False),
            compile_time_s=payload.get("compile_time_s", 0.0),
            solve_time_s=payload.get("solve_time_s", 0.0),
            total_time_s=payload.get("total_time_s", 0.0),
            repair_applied=payload.get("repair_applied", False),
        )


@dataclass(frozen=True)
class SolverResponse:
    """Outcome of one :class:`SolveRequest`.

    ``status`` is ``"ok"`` when the solver produced a result and
    ``"error"`` when the request failed (batch sessions capture failures
    per-request instead of aborting the batch); ``error`` then holds a
    one-line diagnosis.
    """

    request_id: str
    solver: str
    status: str = "ok"
    result: Optional[SolverResult] = None
    error: Optional[str] = None
    telemetry: Optional[SolveTelemetry] = None

    @property
    def ok(self) -> bool:
        """Whether the request succeeded."""
        return self.status == "ok"

    @property
    def plan(self):
        """Shortcut to the recommended plan (``None`` on error)."""
        return None if self.result is None else self.result.plan

    @property
    def cost(self) -> Optional[float]:
        """Shortcut to the plan cost (``None`` on error)."""
        return None if self.result is None else self.result.cost

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable representation."""
        payload: Dict[str, Any] = {
            "version": API_SCHEMA_VERSION,
            "request_id": self.request_id,
            "solver": self.solver,
            "status": self.status,
        }
        if self.result is not None:
            payload["result"] = self.result.to_dict()
        if self.error is not None:
            payload["error"] = self.error
        if self.telemetry is not None:
            payload["telemetry"] = self.telemetry.to_dict()
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SolverResponse":
        """Rebuild a response from :meth:`to_dict` output."""
        _require_mapping(payload, "solver response")
        _check_version(payload, "response")
        missing = [key for key in ("request_id", "solver", "status")
                   if key not in payload]
        if missing:
            raise ClouDiAError(f"solver response payload misses keys {missing}")
        result = payload.get("result")
        telemetry = payload.get("telemetry")
        return cls(
            request_id=payload["request_id"],
            solver=payload["solver"],
            status=payload["status"],
            result=None if result is None else SolverResult.from_dict(result),
            error=payload.get("error"),
            telemetry=None if telemetry is None
            else SolveTelemetry.from_dict(telemetry),
        )


def _require_mapping(payload: Any, kind: str) -> None:
    if not isinstance(payload, Mapping):
        raise ClouDiAError(
            f"{kind} payload must be a JSON object, got "
            f"{type(payload).__name__}"
        )


def _check_version(payload: Mapping[str, Any], kind: str) -> None:
    version = payload.get("version", API_SCHEMA_VERSION)
    if version != API_SCHEMA_VERSION:
        raise ClouDiAError(
            f"unsupported {kind} schema version {version!r} "
            f"(this library reads version {API_SCHEMA_VERSION})"
        )
