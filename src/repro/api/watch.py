"""Policy and telemetry types of the live re-deployment watch loop.

:meth:`repro.api.AdvisorSession.watch` replays a stream of cost revisions
against a deployed plan: every revision refreshes the compiled engine in
place, the incumbent plan is re-scored under the revised costs, and a
re-solve is triggered only when the :class:`WatchPolicy` says the drift or
the incumbent's degradation warrants one.  Each step is recorded as a
:class:`WatchEvent` — including whether the engine was refreshed or
recompiled, whether the re-solve was warm or cold, and whether the result
came from the persistent cache — and the whole run is summarised by a
:class:`WatchReport`, which is also what the CLI ``watch`` command prints
and serializes as the re-deployment log.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..core.deployment import DeploymentPlan
from ..core.problem import DeploymentProblem
from ..solvers.base import SearchBudget, SolverResult
from .schema import AUTO_SOLVER

#: Reasons a watch step re-solved (or did not).
REASON_INITIAL = "initial"
REASON_DRIFT = "drift"
REASON_DEGRADATION = "degradation"
REASON_HELD = "held"


def _finite_or_none(value: float) -> Optional[float]:
    """A float as RFC 8259 JSON can carry it: finite, or ``None``.

    The initial solve's incumbent cost is ``inf`` (no plan exists yet) and
    a zero-cost link turning non-zero drifts infinitely;
    ``json.dump(..., allow_nan=True)`` would serialize those as the bare
    token ``Infinity``, which strict parsers (jq, RFC 8259 consumers)
    reject.  ``null`` is the interchange-safe spelling of "no finite
    value"; :func:`json_to_float` inverts it.
    """
    return float(value) if math.isfinite(value) else None


def json_to_float(value: Optional[float]) -> float:
    """Invert :func:`_finite_or_none` when deserializing a log entry."""
    return float("inf") if value is None else float(value)


@dataclass(frozen=True)
class WatchPolicy:
    """When and how the watch loop re-solves.

    Attributes:
        solver: registry key of the solver re-solves run under (``"auto"``
            = the paper default for the problem's objective).
        config: solver configuration (e.g. ``{"seed": 7}``), validated by
            the registry like any other request config.
        budget: time / iteration limits per re-solve.
        drift_threshold: re-solve when a revision's largest per-link
            relative drift reaches this value, even if the incumbent's
            cost happens to survive (the critical link may simply have
            moved elsewhere).
        degradation_threshold: re-solve when the incumbent plan's cost
            under the revised matrix degrades by at least this fraction
            relative to its cost before the revision — a cheap, targeted
            trigger for drift concentrated on the links the plan actually
            uses.
        warm_start: warm-start re-solves from the incumbent plan (only
            applied to solvers whose registry spec declares
            ``supports_warm_start``); ``False`` forces cold re-solves,
            which is what the benchmark compares against.
    """

    solver: str = AUTO_SOLVER
    config: Mapping[str, Any] = field(default_factory=dict)
    budget: Optional[SearchBudget] = None
    drift_threshold: float = 0.05
    degradation_threshold: float = 0.02
    warm_start: bool = True

    def __post_init__(self) -> None:
        if self.drift_threshold < 0:
            raise ValueError("drift_threshold must be >= 0")
        if self.degradation_threshold < 0:
            raise ValueError("degradation_threshold must be >= 0")


@dataclass(frozen=True)
class WatchEvent:
    """One step of the watch loop: a revision observed, acted on or held.

    Attributes:
        revision: 0 for the initial solve, then 1-based revision numbers.
        reason: why the step solved — ``"initial"``, ``"drift"`` or
            ``"degradation"`` — or ``"held"`` when the policy decided the
            incumbent stands.
        drift: the revision's largest per-link relative drift (0.0 for
            the initial solve).
        refresh_time_s: time spent adopting the revised costs.
        engine_refreshed: ``True`` when the compiled engine was refreshed
            in place (:meth:`CompiledProblem.refresh_costs`); ``False``
            when a full (re)compile was needed — the initial solve, or a
            revision finding no live engine.
        incumbent_cost: the standing plan's cost under the revised costs
            (``inf`` for the initial solve when no plan exists yet).
        resolved: whether a solver ran (or the result cache answered).
        cache_hit: whether the persistent result cache supplied the
            result instead of a solver run.
        warm_start: whether the re-solve was warm-started from the
            incumbent plan.
        solve_time_s: solver wall-clock time (0.0 on cache hits / holds).
        cost: best known cost after the step.
        redeployed: whether the step changed the recommended plan.
        solver: resolved solver registry key.
        fingerprint: fingerprint of the problem revision, the key the
            persistent cache uses.
    """

    revision: int
    reason: str
    drift: float
    refresh_time_s: float
    engine_refreshed: bool
    incumbent_cost: float
    resolved: bool
    cache_hit: bool
    warm_start: bool
    solve_time_s: float
    cost: float
    redeployed: bool
    solver: str
    fingerprint: str

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable representation (one re-deployment log line).

        Strictly RFC 8259: non-finite floats (the initial solve's ``inf``
        incumbent cost, an infinite drift) are mapped to ``null`` so the
        log parses under ``allow_nan=False`` / jq / any non-Python
        consumer; :meth:`from_dict` restores them.
        """
        return {
            "revision": self.revision,
            "reason": self.reason,
            "drift": _finite_or_none(self.drift),
            "refresh_time_s": self.refresh_time_s,
            "engine_refreshed": self.engine_refreshed,
            "incumbent_cost": _finite_or_none(self.incumbent_cost),
            "resolved": self.resolved,
            "cache_hit": self.cache_hit,
            "warm_start": self.warm_start,
            "solve_time_s": self.solve_time_s,
            "cost": _finite_or_none(self.cost),
            "redeployed": self.redeployed,
            "solver": self.solver,
            "fingerprint": self.fingerprint,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "WatchEvent":
        """Rebuild an event from :meth:`to_dict` output (``null`` → ``inf``)."""
        return cls(
            revision=payload["revision"],
            reason=payload["reason"],
            drift=json_to_float(payload["drift"]),
            refresh_time_s=payload["refresh_time_s"],
            engine_refreshed=payload["engine_refreshed"],
            incumbent_cost=json_to_float(payload["incumbent_cost"]),
            resolved=payload["resolved"],
            cache_hit=payload["cache_hit"],
            warm_start=payload["warm_start"],
            solve_time_s=payload["solve_time_s"],
            cost=json_to_float(payload["cost"]),
            redeployed=payload["redeployed"],
            solver=payload["solver"],
            fingerprint=payload["fingerprint"],
        )


@dataclass
class WatchReport:
    """Outcome of one watch run: the final recommendation plus the log.

    Attributes:
        problem: the problem as of the last adopted revision.
        plan: the recommended deployment after the last event.
        cost: the plan's cost under the final costs.
        result: the solver result backing the current plan (from the last
            re-solve or cache hit).
        events: the full event log, in order (initial solve first).
    """

    problem: DeploymentProblem
    plan: DeploymentPlan
    cost: float
    result: Optional[SolverResult]
    events: List[WatchEvent] = field(default_factory=list)

    @property
    def resolves(self) -> int:
        """Steps that ran a solver (cache hits excluded)."""
        return sum(1 for event in self.events
                   if event.resolved and not event.cache_hit)

    @property
    def cache_hits(self) -> int:
        """Steps answered by the persistent result cache."""
        return sum(1 for event in self.events if event.cache_hit)

    @property
    def redeployments(self) -> int:
        """Steps that changed the recommended plan."""
        return sum(1 for event in self.events if event.redeployed)

    @property
    def holds(self) -> int:
        """Revisions where the incumbent plan was kept without re-solving."""
        return sum(1 for event in self.events
                   if event.reason == REASON_HELD)

    @property
    def refreshes(self) -> int:
        """Revisions adopted via in-place engine refresh (not recompile)."""
        return sum(1 for event in self.events if event.engine_refreshed)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable re-deployment log (strict RFC 8259 floats)."""
        return {
            "plan": self.plan.to_dict(),
            "cost": _finite_or_none(self.cost),
            "objective": self.problem.objective.value,
            "events": [event.to_dict() for event in self.events],
            "resolves": self.resolves,
            "cache_hits": self.cache_hits,
            "redeployments": self.redeployments,
            "holds": self.holds,
            "refreshes": self.refreshes,
        }


__all__: Tuple[str, ...] = (
    "REASON_DEGRADATION",
    "REASON_DRIFT",
    "REASON_HELD",
    "REASON_INITIAL",
    "WatchEvent",
    "WatchPolicy",
    "WatchReport",
    "json_to_float",
)
