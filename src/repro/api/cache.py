"""Persistent, cross-process solver-result cache keyed on fingerprints.

The in-memory caches (the process-wide compile LRU, the session's canonical
problem map) die with the process.  A long-lived serving deployment — and a
re-deployment watch loop that may be restarted — wants solved revisions to
survive: the same ``(graph, costs, objective, constraints)`` content should
never be solved twice, not even by a sibling process.

:class:`ResultCache` is that layer: a directory of small JSON files, one
per ``(problem fingerprint, solver key)`` pair, each holding a serialized
:class:`~repro.solvers.base.SolverResult`.  Writes are atomic (temp file +
``os.replace``), so concurrent writers on one filesystem cannot corrupt an
entry, and unreadable or mismatched entries degrade to a cache miss rather
than an error — the cache is an accelerator, never a correctness
dependency.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

from ..core.errors import ClouDiAError
from ..solvers.base import SolverResult

#: Version tag embedded in every cache entry; bumping it invalidates all
#: previously written entries at once.
RESULT_CACHE_VERSION = 1

#: Age beyond which a ``.write-*`` temp file is considered litter from a
#: crashed writer and swept on cache open.  Generously above any realistic
#: write duration, so a live sibling writer's temp file is never deleted
#: out from under its ``os.replace``.
STALE_TEMP_AGE_S = 3600.0


@dataclass(frozen=True)
class ResultCacheStats:
    """Counters of one :class:`ResultCache` handle (not the directory)."""

    hits: int = 0
    misses: int = 0
    writes: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from disk."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class ResultCache:
    """On-disk JSON cache of solver results, keyed on problem fingerprints.

    Args:
        path: directory the entries live in; created (with parents) when
            missing.  Pointing several processes at the same directory is
            the intended sharing mode.

    The key is ``fingerprint + solver tag``: the fingerprint covers
    everything that influences solving (graph, costs, objective,
    constraints — see
    :meth:`~repro.core.problem.DeploymentProblem.fingerprint`), and the
    solver tag keeps results of different runs apart — the watch loop
    passes the solver key qualified with a digest of its config and
    budget, so a cached greedy plan is never served to a CP request and a
    seed-7 one-second solve is never served to a seed-9 sixty-second one.
    """

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self.path.mkdir(parents=True, exist_ok=True)
        self._hits = 0
        self._misses = 0
        self._writes = 0
        self._sweep_stale_temp_files()

    def _sweep_stale_temp_files(self) -> int:
        """Remove ``.write-*`` litter left behind by crashed writers.

        Only files older than :data:`STALE_TEMP_AGE_S` are removed: a
        recent temp file may belong to a live writer in a sibling process,
        whose atomic ``os.replace`` must not be sabotaged.
        """
        cutoff = time.time() - STALE_TEMP_AGE_S
        removed = 0
        for stale in self.path.glob(".write-*"):
            try:
                if stale.stat().st_mtime < cutoff:
                    stale.unlink()
                    removed += 1
            except OSError:
                pass
        return removed

    # ------------------------------------------------------------------ #

    def _entry_path(self, fingerprint: str, solver: str) -> Path:
        # Registry keys are short and filesystem-safe ([a-z0-9-]); the
        # fingerprint is a hex digest.  Keep the name readable for humans
        # poking at the cache directory.
        return self.path / f"{fingerprint}.{solver}.json"

    def get(self, fingerprint: str, solver: str) -> Optional[SolverResult]:
        """The cached result for the pair, or ``None``.

        Any failure to read, parse, or validate the entry counts as a miss
        — a corrupt or stale file never aborts a solve.
        """
        entry = self._entry_path(fingerprint, solver)
        try:
            payload = json.loads(entry.read_text(encoding="utf-8"))
            if (payload.get("version") != RESULT_CACHE_VERSION
                    or payload.get("fingerprint") != fingerprint
                    or payload.get("solver") != solver):
                raise ClouDiAError("cache entry does not match its key")
            result = SolverResult.from_dict(payload["result"])
        except (OSError, ValueError, KeyError, TypeError, ClouDiAError):
            self._misses += 1
            return None
        self._hits += 1
        return result

    def put(self, fingerprint: str, solver: str,
            result: SolverResult) -> None:
        """Persist a result atomically (temp file + rename)."""
        payload = {
            "version": RESULT_CACHE_VERSION,
            "fingerprint": fingerprint,
            "solver": solver,
            "result": result.to_dict(),
        }
        descriptor, temp_name = tempfile.mkstemp(
            dir=self.path, prefix=".write-", suffix=".json")
        try:
            with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, allow_nan=False)
            os.replace(temp_name, self._entry_path(fingerprint, solver))
        except BaseException:
            # Any failure — not just OSError: json.dump raising TypeError /
            # ValueError on an unserializable result (or a KeyboardInterrupt
            # mid-dump) used to leak the temp file.
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
        self._writes += 1

    # ------------------------------------------------------------------ #

    @property
    def stats(self) -> ResultCacheStats:
        """Hit / miss / write counters of this handle."""
        return ResultCacheStats(hits=self._hits, misses=self._misses,
                                writes=self._writes)

    def __len__(self) -> int:
        return sum(1 for entry in self.path.glob("*.json")
                   if not entry.name.startswith("."))

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for entry in self.path.glob("*.json"):
            if entry.name.startswith("."):
                continue
            try:
                entry.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def __repr__(self) -> str:
        return f"ResultCache(path={str(self.path)!r}, entries={len(self)})"
