"""Plain-text tables and series: the output format of the benchmark harness.

Every benchmark regenerates one figure of the paper; since this is a
terminal-first reproduction, "regenerating a figure" means printing the same
series the figure plots, using the helpers below.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: str | None = None, float_format: str = "{:.4g}") -> str:
    """Render a fixed-width text table.

    Args:
        headers: column names.
        rows: row values; floats are formatted with ``float_format``.
        title: optional title printed above the table.
        float_format: format spec applied to float cells.
    """
    def render(cell: object) -> str:
        if isinstance(cell, float):
            return float_format.format(cell)
        return str(cell)

    rendered_rows: List[List[str]] = [[render(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[index]) for index, cell in enumerate(cells))

    parts: List[str] = []
    if title:
        parts.append(title)
    parts.append(line(list(headers)))
    parts.append(line(["-" * width for width in widths]))
    parts.extend(line(row) for row in rendered_rows)
    return "\n".join(parts)


def format_series(name: str, xs: Sequence[float], ys: Sequence[float],
                  x_label: str = "x", y_label: str = "y",
                  float_format: str = "{:.4g}") -> str:
    """Render an (x, y) series as a two-column table."""
    rows = [(float(x), float(y)) for x, y in zip(xs, ys)]
    return format_table([x_label, y_label], rows, title=name,
                        float_format=float_format)


def format_comparison(title: str, entries: Sequence[Tuple[str, float, float]],
                      baseline_label: str = "baseline",
                      value_label: str = "optimized") -> str:
    """Render baseline-vs-optimised rows with the percentage reduction."""
    rows = []
    for label, baseline, optimized in entries:
        reduction = 0.0 if baseline <= 0 else 100.0 * (baseline - optimized) / baseline
        rows.append((label, baseline, optimized, f"{reduction:.1f}%"))
    return format_table(
        ["case", baseline_label, value_label, "reduction"], rows, title=title
    )


def banner(text: str, width: int = 72) -> str:
    """A separator banner used between benchmark sections."""
    pad = max(0, width - len(text) - 2)
    left = pad // 2
    right = pad - left
    return f"{'=' * left} {text} {'=' * right}"
