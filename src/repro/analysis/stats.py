"""Small statistics helpers shared by tests and benchmarks."""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np
from scipy import stats as scipy_stats

from ..core.errors import ClouDiAError


def rmse(estimate: Sequence[float], reference: Sequence[float]) -> float:
    """Root-mean-square error between two equally long vectors."""
    a = np.asarray(list(estimate), dtype=float)
    b = np.asarray(list(reference), dtype=float)
    if a.shape != b.shape:
        raise ClouDiAError("rmse requires vectors of equal length")
    if a.size == 0:
        raise ClouDiAError("rmse of empty vectors is undefined")
    return float(np.sqrt(np.mean((a - b) ** 2)))


def normalized(vector: Sequence[float]) -> np.ndarray:
    """Scale a vector to unit Euclidean norm (zero vectors pass through)."""
    data = np.asarray(list(vector), dtype=float)
    norm = float(np.linalg.norm(data))
    return data / norm if norm > 0 else data


def relative_errors(estimate: Sequence[float], reference: Sequence[float]) -> np.ndarray:
    """Per-element relative error |est - ref| / ref (zeros where ref is zero)."""
    a = np.asarray(list(estimate), dtype=float)
    b = np.asarray(list(reference), dtype=float)
    if a.shape != b.shape:
        raise ClouDiAError("relative_errors requires vectors of equal length")
    with np.errstate(divide="ignore", invalid="ignore"):
        errors = np.abs(a - b) / b
    return np.nan_to_num(errors, nan=0.0, posinf=0.0)


def pearson(x: Sequence[float], y: Sequence[float]) -> float:
    """Pearson correlation coefficient."""
    return float(scipy_stats.pearsonr(np.asarray(list(x)), np.asarray(list(y))).statistic)


def spearman(x: Sequence[float], y: Sequence[float]) -> float:
    """Spearman rank correlation coefficient."""
    return float(scipy_stats.spearmanr(np.asarray(list(x)), np.asarray(list(y))).statistic)


def summary(values: Sequence[float]) -> Dict[str, float]:
    """Mean / std / min / max / quartiles of a sample."""
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        raise ClouDiAError("summary of an empty sample is undefined")
    return {
        "mean": float(data.mean()),
        "std": float(data.std(ddof=0)),
        "min": float(data.min()),
        "p25": float(np.percentile(data, 25)),
        "p50": float(np.percentile(data, 50)),
        "p75": float(np.percentile(data, 75)),
        "p90": float(np.percentile(data, 90)),
        "p99": float(np.percentile(data, 99)),
        "max": float(data.max()),
    }


def improvement_percent(baseline: float, optimized: float) -> float:
    """Percentage reduction of ``optimized`` relative to ``baseline``."""
    if baseline <= 0:
        return 0.0
    return 100.0 * (baseline - optimized) / baseline


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of strictly positive values."""
    data = np.asarray(list(values), dtype=float)
    if data.size == 0 or (data <= 0).any():
        raise ClouDiAError("geometric mean needs a non-empty, positive sample")
    return float(np.exp(np.mean(np.log(data))))


def confidence_interval(values: Sequence[float],
                        confidence: float = 0.95) -> Tuple[float, float]:
    """Normal-approximation confidence interval for the mean of a sample."""
    data = np.asarray(list(values), dtype=float)
    if data.size < 2:
        raise ClouDiAError("confidence interval needs at least two observations")
    mean = float(data.mean())
    half_width = float(
        scipy_stats.norm.ppf(0.5 + confidence / 2.0) * data.std(ddof=1) / np.sqrt(data.size)
    )
    return mean - half_width, mean + half_width
