"""Empirical distribution helpers used by the latency-heterogeneity figures."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from ..core.errors import ClouDiAError


@dataclass(frozen=True)
class EmpiricalCDF:
    """Empirical cumulative distribution function of a scalar sample."""

    values: np.ndarray
    probabilities: np.ndarray

    def at(self, x: float) -> float:
        """Fraction of observations less than or equal to ``x``."""
        return float(np.searchsorted(self.values, x, side="right") / len(self.values))

    def quantile(self, q: float) -> float:
        """Value below which a fraction ``q`` of the observations fall."""
        if not 0.0 <= q <= 1.0:
            raise ClouDiAError("quantile must be in [0, 1]")
        return float(np.quantile(self.values, q))

    def spread(self, low: float = 0.1, high: float = 0.9) -> float:
        """Ratio between a high and a low quantile (heterogeneity measure).

        Fig. 1 of the paper is summarised well by this number: for EC2 the
        90th-percentile mean link latency is roughly twice the 10th.
        """
        lower = self.quantile(low)
        if lower <= 0:
            return float("inf")
        return self.quantile(high) / lower

    def as_series(self) -> Tuple[np.ndarray, np.ndarray]:
        """(x, F(x)) arrays ready for plotting or printing."""
        return self.values.copy(), self.probabilities.copy()


def empirical_cdf(values: Sequence[float]) -> EmpiricalCDF:
    """Build the empirical CDF of a sample."""
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        raise ClouDiAError("cannot build a CDF from an empty sample")
    ordered = np.sort(data)
    probabilities = np.arange(1, ordered.size + 1) / ordered.size
    return EmpiricalCDF(values=ordered, probabilities=probabilities)


def cdf_points(values: Sequence[float], num_points: int = 20) -> Tuple[np.ndarray, np.ndarray]:
    """Downsample an empirical CDF to ``num_points`` evenly spaced quantiles.

    Benchmarks print these compact series instead of thousands of raw points.
    """
    cdf = empirical_cdf(values)
    quantiles = np.linspace(0.0, 1.0, num_points)
    xs = np.quantile(cdf.values, quantiles)
    return xs, quantiles
