"""Analysis helpers: CDFs, statistics and benchmark reporting."""

from .cdf import EmpiricalCDF, cdf_points, empirical_cdf
from .reporting import banner, format_comparison, format_series, format_table
from .stats import (
    confidence_interval,
    geometric_mean,
    improvement_percent,
    normalized,
    pearson,
    relative_errors,
    rmse,
    spearman,
    summary,
)

__all__ = [
    "EmpiricalCDF",
    "banner",
    "cdf_points",
    "confidence_interval",
    "empirical_cdf",
    "format_comparison",
    "format_series",
    "format_table",
    "geometric_mean",
    "improvement_percent",
    "normalized",
    "pearson",
    "relative_errors",
    "rmse",
    "spearman",
    "summary",
]
