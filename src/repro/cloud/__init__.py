"""Simulated public cloud substrate (stands in for EC2 / GCE / Rackspace)."""

from .allocation import (
    AllocationPolicy,
    ContiguousAllocation,
    ScatteredAllocation,
    UniformRandomAllocation,
)
from .instance import Instance
from .latency_model import LatencyModel, ProviderProfile
from .provider import SimulatedCloud, ip_distance
from .topology import DatacenterTopology, Host
from .traces import LatencyTrace, collect_latency_trace, representative_links

__all__ = [
    "AllocationPolicy",
    "ContiguousAllocation",
    "DatacenterTopology",
    "Host",
    "Instance",
    "LatencyModel",
    "LatencyTrace",
    "ProviderProfile",
    "ScatteredAllocation",
    "SimulatedCloud",
    "UniformRandomAllocation",
    "collect_latency_trace",
    "ip_distance",
    "representative_links",
]
