"""Latency generation for the simulated public cloud.

The model produces, for every ordered pair of hosts:

* a *stable mean* latency (the quantity ClouDiA estimates and optimises),
* slow *drift* of that mean over hours (small, so means stay stable as in
  Fig. 2 / 19 / 21 of the paper), and
* per-sample *jitter* (clouds are known to exhibit heavy-tailed latency
  spikes; the measurement schemes must average these out).

Provider profiles encode the ranges observed in the paper for Amazon EC2
(Fig. 1), Google Compute Engine (Fig. 18) and Rackspace (Fig. 20).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from .topology import DatacenterTopology


@dataclass(frozen=True)
class ProviderProfile:
    """Distribution parameters for one public cloud provider.

    Latency values are milliseconds of TCP round-trip time for 1 KB
    messages, the unit used throughout the paper.
    """

    name: str
    #: (low, high) uniform range of base RTT for pairs in the same rack.
    same_rack_ms: Tuple[float, float]
    #: (low, high) range for pairs in the same pod but different racks.
    same_pod_ms: Tuple[float, float]
    #: (low, high) range for pairs crossing pods through the core.
    cross_pod_ms: Tuple[float, float]
    #: Fraction of hosts with a degraded virtualisation/network stack.
    slow_host_fraction: float
    #: (low, high) multiplicative penalty of a slow host.
    slow_host_factor: Tuple[float, float]
    #: Log-normal sigma of multiplicative per-sample jitter.
    jitter_sigma: float
    #: Probability of an additive latency spike on a sample.
    spike_probability: float
    #: Mean of the exponential spike magnitude (ms).
    spike_scale_ms: float
    #: Relative amplitude of the slow sinusoidal drift of the mean.
    drift_amplitude: float
    #: Period of the drift in hours.
    drift_period_hours: float
    #: Effective per-flow bandwidth in MB/s used for the message-size term.
    bandwidth_mb_per_s: float = 100.0

    @classmethod
    def ec2(cls) -> "ProviderProfile":
        """Amazon EC2 m1.large, US East (Fig. 1 and 2)."""
        return cls(
            name="ec2",
            same_rack_ms=(0.18, 0.42),
            same_pod_ms=(0.30, 0.75),
            cross_pod_ms=(0.38, 1.20),
            slow_host_fraction=0.10,
            slow_host_factor=(1.25, 2.0),
            jitter_sigma=0.35,
            spike_probability=0.02,
            spike_scale_ms=2.0,
            drift_amplitude=0.04,
            drift_period_hours=72.0,
        )

    @classmethod
    def gce(cls) -> "ProviderProfile":
        """Google Compute Engine n1-standard-1, us-central1-a (Fig. 18 and 19)."""
        return cls(
            name="gce",
            same_rack_ms=(0.28, 0.36),
            same_pod_ms=(0.32, 0.46),
            cross_pod_ms=(0.36, 0.62),
            slow_host_fraction=0.06,
            slow_host_factor=(1.1, 1.4),
            jitter_sigma=0.25,
            spike_probability=0.015,
            spike_scale_ms=1.2,
            drift_amplitude=0.03,
            drift_period_hours=48.0,
        )

    @classmethod
    def rackspace(cls) -> "ProviderProfile":
        """Rackspace Cloud Server performance 1-1, IAD (Fig. 20 and 21)."""
        return cls(
            name="rackspace",
            same_rack_ms=(0.20, 0.27),
            same_pod_ms=(0.23, 0.34),
            cross_pod_ms=(0.27, 0.48),
            slow_host_fraction=0.05,
            slow_host_factor=(1.1, 1.35),
            jitter_sigma=0.22,
            spike_probability=0.01,
            spike_scale_ms=1.0,
            drift_amplitude=0.03,
            drift_period_hours=36.0,
        )

    @classmethod
    def by_name(cls, name: str) -> "ProviderProfile":
        """Look up a built-in profile by name (``ec2``, ``gce``, ``rackspace``)."""
        profiles = {"ec2": cls.ec2, "gce": cls.gce, "rackspace": cls.rackspace}
        try:
            return profiles[name.lower()]()
        except KeyError as exc:
            raise ValueError(f"unknown provider profile {name!r}") from exc


class LatencyModel:
    """Deterministic, lazily evaluated latency generator over a topology.

    Every ordered host pair has a stable base mean latency derived from the
    pair's locality class, per-host slowdown factors and a per-pair noise
    term.  All quantities are derived from the model seed, so two models
    created with the same seed are identical; this keeps experiments
    reproducible and lets the measurement tools be validated against the
    ground truth.
    """

    def __init__(self, topology: DatacenterTopology, profile: ProviderProfile,
                 seed: int | None = None):
        self.topology = topology
        self.profile = profile
        self._seed = 0 if seed is None else int(seed)
        self._host_factor: Dict[int, float] = {}
        self._pair_cache: Dict[Tuple[int, int], float] = {}
        self._host_rng = np.random.default_rng(self._seed + 101)
        self._precompute_host_factors()

    def _precompute_host_factors(self) -> None:
        low, high = self.profile.slow_host_factor
        for host in self.topology.hosts():
            if self._host_rng.random() < self.profile.slow_host_fraction:
                factor = float(self._host_rng.uniform(low, high))
            else:
                factor = float(self._host_rng.uniform(0.97, 1.06))
            self._host_factor[host.host_id] = factor

    def _pair_rng(self, host_a: int, host_b: int) -> np.random.Generator:
        """Deterministic RNG for the unordered pair (base latency generation)."""
        lo, hi = (host_a, host_b) if host_a <= host_b else (host_b, host_a)
        return np.random.default_rng((self._seed, lo, hi))

    def base_mean_latency(self, host_a: int, host_b: int) -> float:
        """Stable mean RTT (ms) between two hosts, before drift and jitter."""
        if host_a == host_b:
            return 0.0
        key = (host_a, host_b) if host_a <= host_b else (host_b, host_a)
        cached = self._pair_cache.get(key)
        if cached is not None:
            return cached

        rng = self._pair_rng(host_a, host_b)
        locality = self.topology.locality(host_a, host_b)
        if locality == "same_rack":
            low, high = self.profile.same_rack_ms
        elif locality == "same_pod":
            low, high = self.profile.same_pod_ms
        else:
            low, high = self.profile.cross_pod_ms
        base = float(rng.uniform(low, high))
        base *= self._host_factor[host_a] * self._host_factor[host_b]
        # Small per-pair asymmetry-free noise so the distribution is smooth.
        base *= float(rng.uniform(0.97, 1.03))
        self._pair_cache[key] = base
        return base

    def host_factor(self, host_id: int) -> float:
        """Multiplicative slowdown factor of a host (1.0 is nominal)."""
        return self._host_factor[host_id]

    def mean_latency(self, host_a: int, host_b: int, at_hours: float = 0.0) -> float:
        """Mean RTT (ms) at a point in time, including slow drift."""
        base = self.base_mean_latency(host_a, host_b)
        if base == 0.0:
            return 0.0
        rng = self._pair_rng(host_a, host_b)
        phase = float(rng.uniform(0.0, 2.0 * math.pi))
        drift = 1.0 + self.profile.drift_amplitude * math.sin(
            2.0 * math.pi * at_hours / self.profile.drift_period_hours + phase
        )
        return base * drift

    def message_size_term(self, message_bytes: int) -> float:
        """Additional RTT (ms) caused by serialising the probe payload twice."""
        bytes_per_ms = self.profile.bandwidth_mb_per_s * 1e6 / 1e3
        return 2.0 * message_bytes / bytes_per_ms

    def sample_rtt(self, host_a: int, host_b: int, rng: np.random.Generator,
                   at_hours: float = 0.0, message_bytes: int = 1024) -> float:
        """One observed RTT sample (ms) including jitter and occasional spikes."""
        mean = self.mean_latency(host_a, host_b, at_hours)
        if mean == 0.0 and host_a == host_b:
            return 0.0
        size_term = self.message_size_term(message_bytes)
        # Log-normal multiplicative jitter with unit mean.
        sigma = self.profile.jitter_sigma
        jitter = float(rng.lognormal(mean=-0.5 * sigma * sigma, sigma=sigma))
        sample = (mean + size_term) * jitter
        if rng.random() < self.profile.spike_probability:
            sample += float(rng.exponential(self.profile.spike_scale_ms))
        return sample
