"""Instance-placement policies of the simulated cloud provider.

Public clouds allocate instances non-contiguously: a tenant's VMs end up
scattered over racks and pods, which is exactly what produces the latency
heterogeneity ClouDiA exploits.  The policies below control how the
simulated provider picks physical hosts for a new allocation request.
"""

from __future__ import annotations

import abc
from typing import List, Sequence, Set

import numpy as np

from ..core.errors import AllocationError
from .topology import DatacenterTopology


class AllocationPolicy(abc.ABC):
    """Strategy deciding which free hosts receive new instances."""

    @abc.abstractmethod
    def choose_hosts(self, topology: DatacenterTopology, free_hosts: Sequence[int],
                     count: int, rng: np.random.Generator) -> List[int]:
        """Pick ``count`` host ids out of ``free_hosts``."""

    def _check(self, free_hosts: Sequence[int], count: int) -> None:
        if count <= 0:
            raise AllocationError("allocation count must be positive")
        if count > len(free_hosts):
            raise AllocationError(
                f"cannot allocate {count} instances: only {len(free_hosts)} hosts free"
            )


class ScatteredAllocation(AllocationPolicy):
    """Default policy: spread instances over racks, like a real multi-tenant cloud.

    Hosts are drawn rack by rack in a round-robin over a random rack order,
    with a small probability of placing a few instances in the same rack
    (providers do co-locate occasionally, and those pairs are the
    low-latency links worth keeping).
    """

    def __init__(self, same_rack_bias: float = 0.25):
        if not 0.0 <= same_rack_bias <= 1.0:
            raise AllocationError("same_rack_bias must be in [0, 1]")
        self.same_rack_bias = same_rack_bias

    def choose_hosts(self, topology: DatacenterTopology, free_hosts: Sequence[int],
                     count: int, rng: np.random.Generator) -> List[int]:
        self._check(free_hosts, count)
        free_by_rack: dict[int, List[int]] = {}
        for host_id in free_hosts:
            rack = topology.host(host_id).rack_id
            free_by_rack.setdefault(rack, []).append(host_id)
        for hosts in free_by_rack.values():
            rng.shuffle(hosts)

        rack_order = list(free_by_rack)
        rng.shuffle(rack_order)

        chosen: List[int] = []
        current_rack_idx = 0
        while len(chosen) < count:
            rack = rack_order[current_rack_idx % len(rack_order)]
            hosts = free_by_rack[rack]
            if hosts:
                chosen.append(hosts.pop())
                # With some probability stay on the same rack for the next
                # instance, producing a handful of well-connected pairs.
                if not (hosts and rng.random() < self.same_rack_bias):
                    current_rack_idx += 1
            else:
                current_rack_idx += 1
            if all(not hosts for hosts in free_by_rack.values()) and len(chosen) < count:
                raise AllocationError("ran out of free hosts during allocation")
        return chosen


class UniformRandomAllocation(AllocationPolicy):
    """Pick hosts uniformly at random among the free ones."""

    def choose_hosts(self, topology: DatacenterTopology, free_hosts: Sequence[int],
                     count: int, rng: np.random.Generator) -> List[int]:
        self._check(free_hosts, count)
        indices = rng.choice(len(free_hosts), size=count, replace=False)
        return [free_hosts[int(i)] for i in indices]


class ContiguousAllocation(AllocationPolicy):
    """Fill racks in order — an idealised 'cluster placement group' policy.

    Used in tests and ablations as the best case the provider could offer;
    ClouDiA's benefit shrinks when allocations are already contiguous.
    """

    def choose_hosts(self, topology: DatacenterTopology, free_hosts: Sequence[int],
                     count: int, rng: np.random.Generator) -> List[int]:
        self._check(free_hosts, count)
        ordered = sorted(free_hosts,
                         key=lambda h: (topology.host(h).rack_id, h))
        return list(ordered[:count])
