"""Latency traces over time: the stability experiments (Figs. 2, 19, 21).

A :class:`LatencyTrace` records, for a set of directed links, the mean
latency estimated over consecutive time windows.  The paper uses such traces
to argue that mean latencies are stable over many hours, which is what makes
measure-then-optimise deployment tuning worthwhile.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..core.cost_matrix import CostMatrix
from ..core.types import InstanceId, Link, make_rng
from .provider import SimulatedCloud


@dataclass(frozen=True)
class LatencyTrace:
    """Time series of per-link mean latencies.

    Attributes:
        times_hours: window midpoints, in hours since the trace start.
        links: the directed instance pairs observed.
        means_ms: array of shape ``(len(links), len(times_hours))`` with the
            per-window mean latency of each link.
    """

    times_hours: Tuple[float, ...]
    links: Tuple[Link, ...]
    means_ms: np.ndarray

    def series(self, link: Link) -> np.ndarray:
        """The mean-latency series of one link."""
        index = self.links.index(link)
        return self.means_ms[index]

    def stability(self, link: Link) -> float:
        """Coefficient of variation of a link's mean latency over time.

        Small values (a few percent) indicate a stable mean, the property
        Fig. 2 demonstrates for EC2.
        """
        series = self.series(link)
        mean = float(series.mean())
        if mean == 0.0:
            return 0.0
        return float(series.std(ddof=0) / mean)

    def max_relative_drift(self, link: Link) -> float:
        """Largest relative deviation of a window mean from the overall mean."""
        series = self.series(link)
        mean = float(series.mean())
        if mean == 0.0:
            return 0.0
        return float(np.abs(series - mean).max() / mean)

    @property
    def num_windows(self) -> int:
        """Number of measurement windows in the trace."""
        return len(self.times_hours)

    def window_costs(self, index: int, baseline: CostMatrix,
                     symmetric_fallback: bool = True) -> CostMatrix:
        """One window's mean latencies overlaid on a baseline cost matrix.

        The trace usually observes a subset of the directed links (the
        paper probes a handful of representative pairs); this rebuilds a
        full cost matrix for the window by replacing the observed links'
        costs in ``baseline`` and keeping the baseline value everywhere
        else.  With ``symmetric_fallback`` (the default, matching
        :meth:`~repro.netmeasure.MeasurementResult.to_cost_matrix`), a
        link observed in one direction only also updates the reverse
        direction.

        This is what turns a trace into a stream of cost revisions the
        live re-deployment pipeline can replay (see
        :class:`repro.netmeasure.MeasurementStream`).
        """
        if not 0 <= index < self.num_windows:
            raise IndexError(
                f"window index {index} out of range "
                f"(trace has {self.num_windows} windows)"
            )
        matrix = baseline.as_array()
        observed = set(self.links)
        for row, (a, b) in enumerate(self.links):
            matrix[baseline.index_of(a), baseline.index_of(b)] = (
                self.means_ms[row, index]
            )
        if symmetric_fallback:
            for row, (a, b) in enumerate(self.links):
                if (b, a) not in observed:
                    matrix[baseline.index_of(b), baseline.index_of(a)] = (
                        self.means_ms[row, index]
                    )
        return CostMatrix(baseline.instance_ids, matrix)


def collect_latency_trace(cloud: SimulatedCloud, links: Sequence[Link],
                          duration_hours: float, window_hours: float,
                          samples_per_window: int = 200,
                          message_bytes: int = 1024,
                          seed: int | None = None) -> LatencyTrace:
    """Measure a latency trace by repeatedly probing the given links.

    Each window's value is the average of ``samples_per_window`` RTT samples
    taken at the window midpoint, mirroring the paper's methodology of
    averaging latency measurements every two hours over a ten-day run.
    """
    rng = make_rng(seed)
    num_windows = max(1, int(round(duration_hours / window_hours)))
    times = tuple((w + 0.5) * window_hours for w in range(num_windows))
    means = np.zeros((len(links), num_windows), dtype=float)
    for link_index, (src, dst) in enumerate(links):
        for window_index, when in enumerate(times):
            samples = [
                cloud.sample_rtt(src, dst, message_bytes=message_bytes,
                                 at_hours=when, rng=rng)
                for _ in range(samples_per_window)
            ]
            means[link_index, window_index] = float(np.mean(samples))
    return LatencyTrace(times_hours=times, links=tuple(links), means_ms=means)


def representative_links(cloud: SimulatedCloud, count: int = 4,
                         instance_ids: Sequence[InstanceId] | None = None) -> List[Link]:
    """Pick links spanning the latency range, like the four links of Fig. 2.

    Links are chosen at evenly spaced quantiles of the ground-truth mean
    latency distribution so the plotted series cover slow and fast links.
    """
    if instance_ids is None:
        instance_ids = [inst.instance_id for inst in cloud.active_instances()]
    ids = list(instance_ids)
    pairs: Dict[Link, float] = {
        (a, b): cloud.mean_latency(a, b) for a in ids for b in ids if a < b
    }
    ordered = sorted(pairs, key=pairs.get)
    if not ordered:
        return []
    if count >= len(ordered):
        return ordered
    positions = np.linspace(0, len(ordered) - 1, count).round().astype(int)
    return [ordered[int(p)] for p in positions]
