"""Synthetic datacenter topology used by the simulated public cloud.

The paper deliberately avoids relying on datacenter topology (providers do
not expose it and inference is unreliable), but the *simulation substrate*
needs one to generate realistic pairwise latencies, hop counts and internal
IP addresses.  We model the common three-tier tree: hosts sit in racks,
racks connect to aggregation (pod) switches, and pods connect through the
core layer.  Latency heterogeneity then emerges from where instances land.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..core.errors import AllocationError
from ..core.types import make_rng


@dataclass(frozen=True)
class Host:
    """A physical machine in the simulated datacenter."""

    host_id: int
    rack_id: int
    pod_id: int

    def locality_with(self, other: "Host") -> str:
        """Coarse locality class of a pair of hosts."""
        if self.host_id == other.host_id:
            return "same_host"
        if self.rack_id == other.rack_id:
            return "same_rack"
        if self.pod_id == other.pod_id:
            return "same_pod"
        return "cross_pod"


class DatacenterTopology:
    """Three-tier tree topology: pods -> racks -> hosts.

    Args:
        num_pods: number of aggregation pods.
        racks_per_pod: racks under each pod.
        hosts_per_rack: physical hosts per rack.
        ip_assignment: ``"scattered"`` (default) hands out internal IP blocks
            in an order unrelated to physical placement, which reproduces the
            paper's Appendix-2 finding that IP distance does not predict
            latency.  ``"topological"`` assigns one /24 per rack.
        seed: seed for the scattered IP permutation.
    """

    #: Hop counts per locality class, chosen to match the values the paper
    #: observed in EC2 (0, 1 and 3 intermediate routers; cross-pod pairs add
    #: the core layer).
    HOPS = {"same_host": 0, "same_rack": 1, "same_pod": 3, "cross_pod": 5}

    def __init__(self, num_pods: int = 4, racks_per_pod: int = 8,
                 hosts_per_rack: int = 16, ip_assignment: str = "scattered",
                 seed: int | None = None):
        if num_pods < 1 or racks_per_pod < 1 or hosts_per_rack < 1:
            raise AllocationError("topology dimensions must be positive")
        if ip_assignment not in ("scattered", "topological"):
            raise AllocationError(
                f"unknown ip_assignment {ip_assignment!r}; "
                "use 'scattered' or 'topological'"
            )
        self.num_pods = num_pods
        self.racks_per_pod = racks_per_pod
        self.hosts_per_rack = hosts_per_rack
        self.ip_assignment = ip_assignment

        self._hosts: List[Host] = []
        host_id = 0
        for pod in range(num_pods):
            for rack_in_pod in range(racks_per_pod):
                rack_id = pod * racks_per_pod + rack_in_pod
                for _ in range(hosts_per_rack):
                    self._hosts.append(Host(host_id=host_id, rack_id=rack_id,
                                            pod_id=pod))
                    host_id += 1

        self._ips = self._assign_ips(make_rng(seed))

    # ------------------------------------------------------------------ #

    @property
    def num_hosts(self) -> int:
        """Total number of physical hosts."""
        return len(self._hosts)

    @property
    def num_racks(self) -> int:
        """Total number of racks."""
        return self.num_pods * self.racks_per_pod

    def hosts(self) -> Tuple[Host, ...]:
        """All hosts in the datacenter."""
        return tuple(self._hosts)

    def host(self, host_id: int) -> Host:
        """Look up a host by identifier."""
        if not 0 <= host_id < len(self._hosts):
            raise AllocationError(f"unknown host {host_id}")
        return self._hosts[host_id]

    def locality(self, host_a: int, host_b: int) -> str:
        """Locality class (``same_host`` / ``same_rack`` / ``same_pod`` / ``cross_pod``)."""
        return self.host(host_a).locality_with(self.host(host_b))

    def hop_count(self, host_a: int, host_b: int) -> int:
        """Number of intermediate routers between two hosts.

        Mirrors what a tenant would infer by inspecting the TTL field of
        received packets (Appendix 2 of the paper).
        """
        return self.HOPS[self.locality(host_a, host_b)]

    def private_ip(self, host_id: int) -> str:
        """Internal IPv4 address of a host (as a dotted string)."""
        return self._ips[host_id]

    # ------------------------------------------------------------------ #

    def _assign_ips(self, rng: np.random.Generator) -> Dict[int, str]:
        """Assign one internal 10.0.0.0/8 address per host.

        Under the default ``scattered`` policy the address order is a random
        permutation of the host order, so two hosts in the same rack rarely
        share a /24 — the realistic situation in EC2 where DHCP pools are
        decoupled from racks.  Under ``topological`` each rack owns a /24.
        """
        ips: Dict[int, str] = {}
        if self.ip_assignment == "topological":
            for host in self._hosts:
                index_in_rack = host.host_id % self.hosts_per_rack
                ips[host.host_id] = (
                    f"10.{host.pod_id}.{host.rack_id % 256}.{index_in_rack + 1}"
                )
            return ips

        # Scattered: hosts are enumerated in a random order and packed four per
        # /24 block, with blocks hashed over a handful of /16 subnets.  Because
        # the order is a random permutation of the hosts, two machines in the
        # same rack are no more likely to share an address prefix than any
        # other pair — which is why IP distance fails as a latency proxy.
        hosts_per_block = 4
        order = rng.permutation(len(self._hosts))
        for slot, host_index in enumerate(order):
            host = self._hosts[int(host_index)]
            block = slot // hosts_per_block
            second = (block * 7) % 8
            third = (block * 53) % 256
            fourth = (slot % hosts_per_block) + 1 + (block // 256) * hosts_per_block
            ips[host.host_id] = f"10.{second}.{third}.{fourth}"
        return ips
