"""The simulated public cloud provider.

:class:`SimulatedCloud` stands in for Amazon EC2 / Google Compute Engine /
Rackspace in this reproduction.  It exposes exactly the interface a cloud
tenant has — allocate instances, terminate instances, send messages and
observe their round-trip times, read internal IP addresses and TTL-derived
hop counts — plus ground-truth accessors (``mean_latency``,
``true_cost_matrix``) that only the experiment harness uses to validate the
measurement tools.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from ..core.cost_matrix import CostMatrix, LatencyMetric
from ..core.errors import AllocationError
from ..core.types import InstanceId, make_rng
from .allocation import AllocationPolicy, ScatteredAllocation
from .instance import Instance
from .latency_model import LatencyModel, ProviderProfile
from .topology import DatacenterTopology


class SimulatedCloud:
    """A multi-rack public cloud region a tenant can allocate instances in.

    Args:
        profile: latency distribution profile (EC2 / GCE / Rackspace).
        topology: datacenter topology; a default 4-pod/8-rack/16-host tree
            (512 hosts) is built when omitted.
        allocation_policy: how the provider scatters new instances.
        seed: master seed; everything the cloud does is deterministic in it.
    """

    def __init__(self, profile: ProviderProfile | None = None,
                 topology: DatacenterTopology | None = None,
                 allocation_policy: AllocationPolicy | None = None,
                 seed: int | None = None):
        self.profile = profile if profile is not None else ProviderProfile.ec2()
        self._seed = 0 if seed is None else int(seed)
        self.topology = topology if topology is not None else DatacenterTopology(
            num_pods=4, racks_per_pod=8, hosts_per_rack=16, seed=self._seed,
        )
        self.allocation_policy = (
            allocation_policy if allocation_policy is not None else ScatteredAllocation()
        )
        self.latency_model = LatencyModel(self.topology, self.profile, seed=self._seed)

        self._rng = make_rng(self._seed + 7)
        self._sample_rng = make_rng(self._seed + 13)
        self._instances: Dict[InstanceId, Instance] = {}
        self._used_hosts: set[int] = set()
        self._next_instance_id = 0
        self._clock_hours = 0.0

    # ------------------------------------------------------------------ #
    # Tenant-facing API
    # ------------------------------------------------------------------ #

    @property
    def clock_hours(self) -> float:
        """Current simulated time in hours."""
        return self._clock_hours

    def advance_time(self, hours: float) -> None:
        """Move the simulated clock forward."""
        if hours < 0:
            raise AllocationError("time cannot move backwards")
        self._clock_hours += hours

    def allocate(self, count: int) -> List[Instance]:
        """Allocate ``count`` instances (one ``ec2-run-instance`` call).

        Returns the instances in the provider's default ordering — the order
        a tenant would get from the allocation command, which is what the
        paper's *default deployment* baseline uses.
        """
        free_hosts = [h.host_id for h in self.topology.hosts()
                      if h.host_id not in self._used_hosts]
        hosts = self.allocation_policy.choose_hosts(
            self.topology, free_hosts, count, self._rng
        )
        instances: List[Instance] = []
        for host_id in hosts:
            instance = Instance(
                instance_id=self._next_instance_id,
                host_id=host_id,
                private_ip=self.topology.private_ip(host_id),
                allocated_at_hours=self._clock_hours,
            )
            self._next_instance_id += 1
            self._used_hosts.add(host_id)
            self._instances[instance.instance_id] = instance
            instances.append(instance)
        return instances

    def terminate(self, instance_ids: Iterable[InstanceId]) -> None:
        """Terminate instances (idempotent for already-terminated ids)."""
        for instance_id in list(instance_ids):
            instance = self._instances.pop(instance_id, None)
            if instance is not None:
                self._used_hosts.discard(instance.host_id)

    def active_instances(self) -> List[Instance]:
        """Currently allocated instances, ordered by identifier."""
        return [self._instances[i] for i in sorted(self._instances)]

    def instance(self, instance_id: InstanceId) -> Instance:
        """Look up an allocated instance."""
        try:
            return self._instances[instance_id]
        except KeyError as exc:
            raise AllocationError(f"instance {instance_id} is not allocated") from exc

    def sample_rtt(self, src: InstanceId, dst: InstanceId,
                   message_bytes: int = 1024,
                   at_hours: float | None = None,
                   rng: np.random.Generator | None = None) -> float:
        """Observe one TCP round-trip time (ms) between two instances.

        This is the only latency signal a real tenant can obtain; it includes
        jitter and occasional spikes on top of the stable mean.
        """
        a = self.instance(src)
        b = self.instance(dst)
        when = self._clock_hours if at_hours is None else at_hours
        generator = rng if rng is not None else self._sample_rng
        return self.latency_model.sample_rtt(
            a.host_id, b.host_id, generator, at_hours=when,
            message_bytes=message_bytes,
        )

    def hop_count(self, src: InstanceId, dst: InstanceId) -> int:
        """TTL-derived router hop count between two instances (Appendix 2)."""
        a = self.instance(src)
        b = self.instance(dst)
        return self.topology.hop_count(a.host_id, b.host_id)

    def private_ip(self, instance_id: InstanceId) -> str:
        """Internal IPv4 address of an instance."""
        return self.instance(instance_id).private_ip

    # ------------------------------------------------------------------ #
    # Ground-truth accessors (simulation only)
    # ------------------------------------------------------------------ #

    def mean_latency(self, src: InstanceId, dst: InstanceId,
                     at_hours: float | None = None) -> float:
        """Ground-truth mean RTT (ms) between two instances."""
        a = self.instance(src)
        b = self.instance(dst)
        when = self._clock_hours if at_hours is None else at_hours
        return self.latency_model.mean_latency(a.host_id, b.host_id, at_hours=when)

    def true_cost_matrix(self, instance_ids: Sequence[InstanceId] | None = None,
                         metric: LatencyMetric = LatencyMetric.MEAN,
                         at_hours: float | None = None,
                         num_samples: int = 64,
                         message_bytes: int = 1024,
                         seed: int | None = None) -> CostMatrix:
        """Ground-truth cost matrix between allocated instances.

        For the :class:`LatencyMetric.MEAN` metric this is exact (the model
        mean); for the jitter-sensitive metrics it is estimated from
        ``num_samples`` interference-free samples per ordered pair.
        """
        if instance_ids is None:
            instance_ids = [inst.instance_id for inst in self.active_instances()]
        ids = list(instance_ids)
        when = self._clock_hours if at_hours is None else at_hours

        if metric is LatencyMetric.MEAN:
            return CostMatrix.from_function(
                ids, lambda i, j: self.mean_latency(i, j, at_hours=when)
            )

        rng = make_rng(self._seed + 1009 if seed is None else seed)
        n = len(ids)
        matrix = np.zeros((n, n), dtype=float)
        for ai, a in enumerate(ids):
            for bi, b in enumerate(ids):
                if ai == bi:
                    continue
                samples = [
                    self.sample_rtt(a, b, message_bytes=message_bytes,
                                    at_hours=when, rng=rng)
                    for _ in range(num_samples)
                ]
                matrix[ai, bi] = metric.summarise(samples)
        return CostMatrix(ids, matrix)

    def pairwise_mean_latencies(self, instance_ids: Sequence[InstanceId] | None = None,
                                at_hours: float | None = None) -> Dict[Tuple[int, int], float]:
        """Ground-truth mean latency for every ordered pair of instances."""
        if instance_ids is None:
            instance_ids = [inst.instance_id for inst in self.active_instances()]
        ids = list(instance_ids)
        when = self._clock_hours if at_hours is None else at_hours
        return {
            (a, b): self.mean_latency(a, b, at_hours=when)
            for a in ids for b in ids if a != b
        }

    def __repr__(self) -> str:
        return (
            f"SimulatedCloud(profile={self.profile.name!r}, "
            f"hosts={self.topology.num_hosts}, active={len(self._instances)})"
        )


def ip_distance(ip_a: str, ip_b: str, group_bits: int = 8) -> int:
    """Dissimilarity of two IPv4 addresses, as defined in Appendix 2.

    Two addresses sharing a ``/x`` prefix but not a ``/(x + group_bits)``
    prefix have distance ``(32 - x) / group_bits`` (in groups).  With the
    default ``group_bits=8`` this is simply the number of dotted octets,
    counted from the right, in which the addresses differ.
    """
    if not 1 <= group_bits < 32:
        raise ValueError("group_bits must be in [1, 31]")

    def to_int(ip: str) -> int:
        parts = [int(p) for p in ip.split(".")]
        if len(parts) != 4 or any(not 0 <= p <= 255 for p in parts):
            raise ValueError(f"invalid IPv4 address {ip!r}")
        return (parts[0] << 24) | (parts[1] << 16) | (parts[2] << 8) | parts[3]

    xor = to_int(ip_a) ^ to_int(ip_b)
    if xor == 0:
        return 0
    shared_prefix = 32 - xor.bit_length()
    differing_bits = 32 - shared_prefix
    return (differing_bits + group_bits - 1) // group_bits
