"""Allocated virtual machine instances."""

from __future__ import annotations

from dataclasses import dataclass

from ..core.types import InstanceId


@dataclass(frozen=True)
class Instance:
    """A virtual machine allocated by the simulated cloud.

    Attributes:
        instance_id: identifier returned to the tenant (what deployment
            plans refer to).
        host_id: physical host the instance landed on.  Tenants of real
            clouds never see this; it exists so the simulator can derive
            latencies, hop counts and locality.
        private_ip: internal IPv4 address, used by the IP-distance
            approximation of Appendix 2.
        allocated_at_hours: simulated allocation time.
    """

    instance_id: InstanceId
    host_id: int
    private_ip: str
    allocated_at_hours: float = 0.0

    def __repr__(self) -> str:
        return f"Instance(id={self.instance_id}, ip={self.private_ip})"
