"""The persisted re-deployment log: watch runs, events and revisions.

:meth:`repro.api.AdvisorSession.watch` produces an in-memory
:class:`~repro.api.watch.WatchReport`; this module makes that log durable.
One :meth:`WatchHistory.record_report` call writes, in a single
transaction, a ``watch_runs`` summary row, one ``watch_events`` row per
:class:`~repro.api.watch.WatchEvent`, and the ``cost_revisions`` lineage
(which fingerprint each revision was drifted from, and by how much) — so a
serving layer can answer "what happened to deployment X?" from any sibling
process, across restarts.

Non-finite floats (the initial solve's ``inf`` incumbent cost, an infinite
drift on a zero-cost link) are stored as SQL ``NULL`` — the same mapping
the strict-JSON serialization uses — and surface back as ``inf`` when rows
are rebuilt into :class:`WatchEvent` objects.
"""

from __future__ import annotations

import math
import sqlite3
import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..api.watch import WatchEvent, WatchReport
from ..core.errors import StoreError
from .connection import transaction


def _stored(value: float) -> Optional[float]:
    """A float as stored: finite values pass, non-finite become NULL."""
    return float(value) if math.isfinite(value) else None


def _loaded(value: Optional[float]) -> float:
    """Invert :func:`_stored` (NULL means "no finite value", i.e. ``inf``)."""
    return float("inf") if value is None else float(value)


@dataclass(frozen=True)
class WatchRunSummary:
    """One recorded watch run (the ``watch_runs`` row)."""

    run_id: int
    root_fingerprint: str
    solver: str
    objective: str
    final_cost: Optional[float]
    resolves: int
    cache_hits: int
    redeployments: int
    holds: int
    created_at: float
    num_events: int


class WatchHistory:
    """Query/record interface over the store's watch-history tables.

    Produced by :attr:`repro.store.SQLiteResultCache.history`; shares the
    cache's connection and lock, so history writes and result writes go
    through the same WAL.
    """

    def __init__(self, conn: sqlite3.Connection, lock) -> None:
        self._conn = conn
        self._lock = lock

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #

    def record_report(self, report: WatchReport, *, solver: str,
                      root_fingerprint: str) -> int:
        """Persist a finished watch run; returns the new ``run_id``.

        Args:
            report: the report :meth:`AdvisorSession.watch` returned.
            solver: resolved solver registry key the run used.
            root_fingerprint: fingerprint of the problem the watch
                *started* from (each revision has its own fingerprint,
                recorded per event).

        Raises:
            StoreError: when the write fails (disk full, lock timeout).
        """
        now = time.time()
        try:
            with self._lock, transaction(self._conn):
                cursor = self._conn.execute(
                    """
                    INSERT INTO watch_runs (root_fingerprint, solver,
                        objective, final_cost, resolves, cache_hits,
                        redeployments, holds, created_at)
                    VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)
                    """,
                    (root_fingerprint, solver,
                     report.problem.objective.value, _stored(report.cost),
                     report.resolves, report.cache_hits,
                     report.redeployments, report.holds, now),
                )
                run_id = int(cursor.lastrowid)
                self._conn.executemany(
                    """
                    INSERT INTO watch_events (run_id, revision, fingerprint,
                        reason, drift, refresh_time_s, engine_refreshed,
                        incumbent_cost, resolved, cache_hit, warm_start,
                        solve_time_s, cost, redeployed, solver)
                    VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)
                    """,
                    [(run_id, event.revision, event.fingerprint,
                      event.reason, _stored(event.drift),
                      event.refresh_time_s, int(event.engine_refreshed),
                      _stored(event.incumbent_cost), int(event.resolved),
                      int(event.cache_hit), int(event.warm_start),
                      event.solve_time_s, _stored(event.cost),
                      int(event.redeployed), event.solver)
                     for event in report.events],
                )
                self._conn.executemany(
                    """
                    INSERT INTO cost_revisions (fingerprint,
                        parent_fingerprint, revision, max_drift, created_at)
                    VALUES (?, ?, ?, ?, ?)
                    """,
                    [(event.fingerprint, previous.fingerprint,
                      event.revision, _stored(event.drift), now)
                     for previous, event in zip(report.events,
                                                report.events[1:])],
                )
        except sqlite3.Error as exc:
            raise StoreError(
                f"cannot record watch history: {exc}") from exc
        return run_id

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def runs(self, root_fingerprint: Optional[str] = None
             ) -> List[WatchRunSummary]:
        """Recorded runs, oldest first, optionally for one root problem."""
        query = """
            SELECT r.run_id, r.root_fingerprint, r.solver, r.objective,
                   r.final_cost, r.resolves, r.cache_hits, r.redeployments,
                   r.holds, r.created_at,
                   (SELECT COUNT(*) FROM watch_events e
                    WHERE e.run_id = r.run_id)
            FROM watch_runs r
        """
        params: Tuple = ()
        if root_fingerprint is not None:
            query += " WHERE r.root_fingerprint = ?"
            params = (root_fingerprint,)
        query += " ORDER BY r.created_at, r.run_id"
        with self._lock:
            rows = self._conn.execute(query, params).fetchall()
        return [WatchRunSummary(*row) for row in rows]

    def events(self, run_id: int) -> List[WatchEvent]:
        """The full event log of one run, in revision order."""
        with self._lock:
            rows = self._conn.execute(
                """
                SELECT revision, reason, drift, refresh_time_s,
                       engine_refreshed, incumbent_cost, resolved, cache_hit,
                       warm_start, solve_time_s, cost, redeployed, solver,
                       fingerprint
                FROM watch_events WHERE run_id = ? ORDER BY revision
                """,
                (run_id,),
            ).fetchall()
        return [self._event_from_row(row) for row in rows]

    def redeployments(self, root_fingerprint: str,
                      since_revision: int = 0) -> List[WatchEvent]:
        """Plan-changing events of a deployment since a revision number.

        The indexed query behind "all redeployments for fingerprint X since
        revision N": every event that changed the recommended plan, across
        all recorded runs rooted at ``root_fingerprint``, with revision
        number strictly greater than ``since_revision`` — ordered by run,
        then revision.
        """
        with self._lock:
            rows = self._conn.execute(
                """
                SELECT e.revision, e.reason, e.drift, e.refresh_time_s,
                       e.engine_refreshed, e.incumbent_cost, e.resolved,
                       e.cache_hit, e.warm_start, e.solve_time_s, e.cost,
                       e.redeployed, e.solver, e.fingerprint
                FROM watch_events e
                JOIN watch_runs r ON r.run_id = e.run_id
                WHERE r.root_fingerprint = ? AND e.redeployed = 1
                      AND e.revision > ?
                ORDER BY r.created_at, r.run_id, e.revision
                """,
                (root_fingerprint, since_revision),
            ).fetchall()
        return [self._event_from_row(row) for row in rows]

    def revision_lineage(self, fingerprint: str) -> List[Tuple[str, int, float]]:
        """Revisions drifted *from* ``fingerprint``:
        ``(child fingerprint, revision number, max drift)`` tuples."""
        with self._lock:
            rows = self._conn.execute(
                """
                SELECT fingerprint, revision, max_drift FROM cost_revisions
                WHERE parent_fingerprint = ? ORDER BY revision, id
                """,
                (fingerprint,),
            ).fetchall()
        return [(row[0], int(row[1]), _loaded(row[2])) for row in rows]

    @staticmethod
    def _event_from_row(row) -> WatchEvent:
        (revision, reason, drift, refresh_time_s, engine_refreshed,
         incumbent_cost, resolved, cache_hit, warm_start, solve_time_s,
         cost, redeployed, solver, fingerprint) = row
        return WatchEvent(
            revision=int(revision), reason=reason, drift=_loaded(drift),
            refresh_time_s=float(refresh_time_s),
            engine_refreshed=bool(engine_refreshed),
            incumbent_cost=_loaded(incumbent_cost), resolved=bool(resolved),
            cache_hit=bool(cache_hit), warm_start=bool(warm_start),
            solve_time_s=float(solve_time_s), cost=_loaded(cost),
            redeployed=bool(redeployed), solver=solver,
            fingerprint=fingerprint,
        )
