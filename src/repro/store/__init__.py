"""Durable WAL-mode SQLite store of solver results and watch history.

The persistence layer the serving-scale deployment advisor sits on: one
SQLite database (``journal_mode=WAL``, ``synchronous=NORMAL``, a generous
``busy_timeout``, foreign keys enforced) holding problems, solver results,
cost-revision lineage, solve telemetry and the persisted re-deployment
log.  :class:`SQLiteResultCache` satisfies the same ``get`` / ``put`` /
``stats`` protocol as the JSON-file :class:`~repro.api.cache.ResultCache`
it replaces, so :class:`~repro.api.AdvisorSession` (and the CLI ``watch
--store``) use it as a drop-in accelerator — while sibling processes share
the database with concurrent readers, and :class:`WatchHistory` answers
indexed queries like "all redeployments for fingerprint X since
revision N" across restarts.
"""

from .connection import DEFAULT_BUSY_TIMEOUT_MS, connect, transaction
from .eviction import SweepStats, sweep
from .history import WatchHistory, WatchRunSummary
from .result_cache import SQLiteResultCache, migrate_json_cache
from .schema import SCHEMA_VERSION, apply_schema, schema_version

__all__ = [
    "DEFAULT_BUSY_TIMEOUT_MS",
    "SCHEMA_VERSION",
    "SQLiteResultCache",
    "SweepStats",
    "WatchHistory",
    "WatchRunSummary",
    "apply_schema",
    "connect",
    "migrate_json_cache",
    "schema_version",
    "sweep",
    "transaction",
]
