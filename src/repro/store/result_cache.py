"""Durable SQLite-backed solver-result cache (and its JSON-cache migration).

:class:`SQLiteResultCache` is the WAL-mode replacement of the JSON
file-per-result :class:`~repro.api.cache.ResultCache`: the same
``get`` / ``put`` / ``stats`` surface (so :class:`~repro.api.AdvisorSession`
consumes either interchangeably), but one database instead of a directory
of files — concurrent readers for a serving layer, indexed queries over the
re-deployment history (:attr:`SQLiteResultCache.history`), durable solve
telemetry, and size/age eviction sweeps.

The JSON cache's failure discipline carries over:

* reads that fail for *any* reason — locked database, corrupt payload,
  mismatched key, malformed result — degrade to a cache miss, never into
  aborting a solve;
* writes are transactional (a killed writer leaves a recoverable WAL, not
  a half-written row) and raise :class:`~repro.core.errors.StoreError` so
  failures are loud;
* any temporary artifact the store creates (the eviction sweeps and WAL
  checkpoints work in-database; :func:`migrate_json_cache` is the one
  file-level path) is cleaned up under **all** exception types, the fix
  :meth:`ResultCache.put` also received.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
from pathlib import Path
from typing import Optional, Union

from ..api.cache import RESULT_CACHE_VERSION, ResultCache, ResultCacheStats
from ..api.schema import SolverResponse
from ..core.errors import ClouDiAError, StoreError
from ..core.problem import DeploymentProblem
from ..solvers.base import SolverResult
from .connection import DEFAULT_BUSY_TIMEOUT_MS, connect, transaction
from .eviction import SweepStats, sweep
from .history import WatchHistory
from .schema import apply_schema


class SQLiteResultCache:
    """WAL-mode SQLite store of solver results and re-deployment history.

    Args:
        path: database file; created (with parent directories and schema)
            when missing.  Pointing several processes at the same file is
            the intended sharing mode — WAL gives them concurrent readers
            and queued writers.
        max_results: size eviction knob — keep at most this many result
            rows (least-recently-used evicted first).  ``None`` disables.
        max_age_s: age eviction knob — drop result rows not used, and
            history not recorded, within this many seconds.  ``None``
            disables.
        sweep_every: run an automatic eviction sweep after this many
            ``put`` calls (only when a knob is set); :meth:`sweep` can
            always be called explicitly.
        busy_timeout_ms: how long writers wait on a locked database.

    The ``(fingerprint, solver tag)`` key, the entry versioning, and the
    corrupt-entry-is-a-miss semantics are identical to the JSON
    :class:`~repro.api.cache.ResultCache` it replaces.
    """

    def __init__(self, path: Union[str, Path],
                 max_results: Optional[int] = None,
                 max_age_s: Optional[float] = None,
                 sweep_every: int = 64,
                 busy_timeout_ms: int = DEFAULT_BUSY_TIMEOUT_MS):
        if max_results is not None and max_results < 1:
            raise ValueError("max_results must be >= 1")
        if max_age_s is not None and max_age_s <= 0:
            raise ValueError("max_age_s must be > 0")
        if sweep_every < 1:
            raise ValueError("sweep_every must be >= 1")
        self.path = Path(path)
        self.max_results = max_results
        self.max_age_s = max_age_s
        self.sweep_every = sweep_every
        self._lock = threading.RLock()
        self._conn = connect(self.path, busy_timeout_ms=busy_timeout_ms)
        apply_schema(self._conn)
        self._hits = 0
        self._misses = 0
        self._writes = 0
        self._puts_since_sweep = 0
        self._history = WatchHistory(self._conn, self._lock)

    # ------------------------------------------------------------------ #
    # The ResultCache protocol: get / put / stats / len / clear
    # ------------------------------------------------------------------ #

    def get(self, fingerprint: str, solver: str) -> Optional[SolverResult]:
        """The cached result for the pair, or ``None``.

        Any failure — database locked past its timeout, corrupt payload,
        version or key mismatch — counts as a miss; the store accelerates
        solving, it never aborts it.  Hits touch the row's
        ``last_used_at`` so LRU eviction keeps hot entries.
        """
        try:
            with self._lock:
                row = self._conn.execute(
                    "SELECT version, payload FROM results "
                    "WHERE fingerprint = ? AND solver = ?",
                    (fingerprint, solver),
                ).fetchone()
                if row is None or row[0] != RESULT_CACHE_VERSION:
                    raise ClouDiAError("no matching cache row")
                payload = json.loads(row[1])
                result = SolverResult.from_dict(payload)
                self._conn.execute(
                    "UPDATE results SET last_used_at = ? "
                    "WHERE fingerprint = ? AND solver = ?",
                    (time.time(), fingerprint, solver),
                )
        except (sqlite3.Error, ValueError, KeyError, TypeError,
                ClouDiAError):
            with self._lock:
                self._misses += 1
            return None
        with self._lock:
            self._hits += 1
        return result

    def put(self, fingerprint: str, solver: str,
            result: SolverResult) -> None:
        """Persist a result transactionally (upsert on the pair key).

        A minimal ``problems`` anchor row is inserted when the fingerprint
        is new; :meth:`record_problem` enriches it with instance metadata
        when the full problem object is at hand.

        Raises:
            StoreError: when the write fails; a failed write leaves no
                partial row behind (the transaction rolls back).
        """
        payload = json.dumps(result.to_dict(), allow_nan=False)
        now = time.time()
        try:
            with self._lock, transaction(self._conn):
                self._conn.execute(
                    "INSERT OR IGNORE INTO problems "
                    "(fingerprint, objective, num_nodes, created_at) "
                    "VALUES (?, ?, ?, ?)",
                    (fingerprint, result.objective.value,
                     len(result.plan.as_dict()), now),
                )
                self._conn.execute(
                    """
                    INSERT INTO results (fingerprint, solver, version, cost,
                                         payload, created_at, last_used_at)
                    VALUES (?, ?, ?, ?, ?, ?, ?)
                    ON CONFLICT (fingerprint, solver) DO UPDATE SET
                        version = excluded.version,
                        cost = excluded.cost,
                        payload = excluded.payload,
                        last_used_at = excluded.last_used_at
                    """,
                    (fingerprint, solver, RESULT_CACHE_VERSION, result.cost,
                     payload, now, now),
                )
        except sqlite3.Error as exc:
            raise StoreError(
                f"cannot store result for {fingerprint[:12]}…/{solver}: "
                f"{exc}"
            ) from exc
        with self._lock:
            self._writes += 1
            self._puts_since_sweep += 1
            due = (self._puts_since_sweep >= self.sweep_every
                   and (self.max_results is not None
                        or self.max_age_s is not None))
        if due:
            self.sweep()

    @property
    def stats(self) -> ResultCacheStats:
        """Hit / miss / write counters of this handle (not the database)."""
        with self._lock:
            return ResultCacheStats(hits=self._hits, misses=self._misses,
                                    writes=self._writes)

    def __len__(self) -> int:
        with self._lock:
            return int(self._conn.execute(
                "SELECT COUNT(*) FROM results").fetchone()[0])

    def clear(self) -> int:
        """Delete every result entry; returns how many were removed.

        History and telemetry rows survive — clearing the accelerator must
        not erase the audit log.
        """
        try:
            with self._lock, transaction(self._conn):
                removed = self._conn.execute("DELETE FROM results").rowcount
        except sqlite3.Error as exc:
            raise StoreError(f"cannot clear result store: {exc}") from exc
        return removed

    # ------------------------------------------------------------------ #
    # Store-only surface: history, telemetry, eviction, lifecycle
    # ------------------------------------------------------------------ #

    @property
    def history(self) -> WatchHistory:
        """The durable re-deployment log sharing this store's database."""
        return self._history

    def record_problem(self, problem: DeploymentProblem) -> None:
        """Upsert the full metadata row for a problem's fingerprint."""
        try:
            with self._lock, transaction(self._conn):
                self._conn.execute(
                    """
                    INSERT INTO problems (fingerprint, instance_key,
                        objective, num_nodes, num_instances, created_at)
                    VALUES (?, ?, ?, ?, ?, ?)
                    ON CONFLICT (fingerprint) DO UPDATE SET
                        instance_key = excluded.instance_key,
                        num_nodes = excluded.num_nodes,
                        num_instances = excluded.num_instances
                    """,
                    (problem.fingerprint(), problem.instance_key(),
                     problem.objective.value, problem.graph.num_nodes,
                     len(problem.costs.instance_ids), time.time()),
                )
        except sqlite3.Error as exc:
            raise StoreError(f"cannot record problem: {exc}") from exc

    def record_telemetry(self, fingerprint: str,
                         response: SolverResponse) -> None:
        """Append one solve-telemetry row (the monitoring stream)."""
        telemetry = response.telemetry
        try:
            with self._lock, transaction(self._conn):
                self._conn.execute(
                    """
                    INSERT INTO telemetry (request_id, fingerprint, solver,
                        status, compile_cache_hit, compile_time_s,
                        solve_time_s, total_time_s, repair_applied,
                        created_at)
                    VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)
                    """,
                    (response.request_id, fingerprint, response.solver,
                     response.status,
                     None if telemetry is None
                     else int(telemetry.compile_cache_hit),
                     None if telemetry is None else telemetry.compile_time_s,
                     None if telemetry is None else telemetry.solve_time_s,
                     None if telemetry is None else telemetry.total_time_s,
                     None if telemetry is None
                     else int(telemetry.repair_applied),
                     time.time()),
                )
        except sqlite3.Error as exc:
            raise StoreError(f"cannot record telemetry: {exc}") from exc

    def sweep(self, now: Optional[float] = None) -> SweepStats:
        """Run one size/age eviction sweep with the configured knobs."""
        with self._lock:
            self._puts_since_sweep = 0
            try:
                return sweep(self._conn, max_results=self.max_results,
                             max_age_s=self.max_age_s, now=now)
            except sqlite3.Error as exc:
                raise StoreError(f"eviction sweep failed: {exc}") from exc

    def checkpoint(self) -> None:
        """Fold the WAL back into the main database file (best effort)."""
        with self._lock:
            try:
                self._conn.execute("PRAGMA wal_checkpoint(TRUNCATE)")
            except sqlite3.Error:
                pass

    def close(self) -> None:
        """Close the underlying connection (idempotent)."""
        with self._lock:
            try:
                self._conn.close()
            except sqlite3.Error:
                pass

    def __enter__(self) -> "SQLiteResultCache":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"SQLiteResultCache(path={str(self.path)!r}, "
                f"entries={len(self)})")


def migrate_json_cache(directory: Union[str, Path],
                       store: SQLiteResultCache) -> int:
    """Import a JSON-file :class:`ResultCache` directory into ``store``.

    The upgrade path from the PR-5 cache layout: every readable entry is
    re-keyed into the database (existing rows win — the store may already
    hold fresher results), unreadable entries are skipped exactly as the
    JSON cache itself skips them, and stale ``.write-*`` temp litter from
    crashed writers is swept.  The JSON files themselves are left in place;
    delete the directory once the migration is verified.

    Returns:
        Number of entries imported into the store.
    """
    directory = Path(directory)
    imported = 0
    source = ResultCache(directory)
    for entry in sorted(directory.glob("*.json")):
        if entry.name.startswith("."):
            continue
        # File names are "<fingerprint>.<solver tag...>.json"; the solver
        # tag may itself contain dots (e.g. "local-search.<digest>").
        stem = entry.name[:-len(".json")]
        fingerprint, _, solver = stem.partition(".")
        if not fingerprint or not solver:
            continue
        result = source.get(fingerprint, solver)
        if result is None:
            continue
        exists = store.get(fingerprint, solver) is not None
        if not exists:
            store.put(fingerprint, solver, result)
            imported += 1
    return imported
