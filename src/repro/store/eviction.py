"""Size and age eviction sweeps over the durable store.

The store is append-heavy: every watch revision inserts a result row and a
handful of history rows.  Left alone it grows without bound, so the sweeps
here enforce two retention knobs:

* **age** — result rows whose ``last_used_at`` is older than ``max_age_s``
  are dropped (an entry nobody read for that long is stale capacity, and a
  re-solve recreates it);
* **size** — beyond ``max_results`` rows, least-recently-used results are
  dropped first (``last_used_at`` ascending, insertion order as the
  tie-break).

History retention mirrors it with ``max_runs`` / ``max_age_s`` over watch
runs (events cascade via the foreign key).  Problems that no longer anchor
any result, revision or run row are pruned opportunistically — they are
metadata, recreated on the next ``put``.

Each sweep is one write transaction: a reader either sees the store before
the sweep or after it, never a half-evicted state.
"""

from __future__ import annotations

import sqlite3
import time
from dataclasses import dataclass
from typing import Optional

from .connection import transaction


@dataclass(frozen=True)
class SweepStats:
    """What one eviction sweep removed."""

    results_by_age: int = 0
    results_by_size: int = 0
    runs_by_age: int = 0
    runs_by_size: int = 0
    revisions_by_age: int = 0
    orphan_problems: int = 0

    @property
    def total(self) -> int:
        """Total rows removed (cascaded event rows not counted)."""
        return (self.results_by_age + self.results_by_size
                + self.runs_by_age + self.runs_by_size
                + self.revisions_by_age + self.orphan_problems)


def sweep(conn: sqlite3.Connection,
          max_results: Optional[int] = None,
          max_age_s: Optional[float] = None,
          max_runs: Optional[int] = None,
          now: Optional[float] = None) -> SweepStats:
    """Run one eviction sweep; limits that are ``None`` are not enforced.

    Args:
        conn: a store connection (see :func:`repro.store.connect`).
        max_results: keep at most this many result rows (LRU beyond it).
        max_age_s: drop result rows not used — and watch runs not recorded
            — within this many seconds.
        max_runs: keep at most this many watch runs (oldest first).
        now: reference clock (epoch seconds); defaults to ``time.time()``,
            injectable for tests.

    Returns:
        Counts of removed rows per category.
    """
    now = time.time() if now is None else now
    results_by_age = results_by_size = 0
    runs_by_age = runs_by_size = revisions_by_age = 0
    with transaction(conn):
        if max_age_s is not None:
            cutoff = now - max_age_s
            results_by_age = conn.execute(
                "DELETE FROM results WHERE last_used_at < ?", (cutoff,)
            ).rowcount
            runs_by_age = conn.execute(
                "DELETE FROM watch_runs WHERE created_at < ?", (cutoff,)
            ).rowcount
            revisions_by_age = conn.execute(
                "DELETE FROM cost_revisions WHERE created_at < ?", (cutoff,)
            ).rowcount
        if max_results is not None:
            results_by_size = conn.execute(
                """
                DELETE FROM results WHERE rowid IN (
                    SELECT rowid FROM results
                    ORDER BY last_used_at DESC, rowid DESC
                    LIMIT -1 OFFSET ?
                )
                """,
                (max(0, max_results),),
            ).rowcount
        if max_runs is not None:
            runs_by_size = conn.execute(
                """
                DELETE FROM watch_runs WHERE run_id IN (
                    SELECT run_id FROM watch_runs
                    ORDER BY created_at DESC, run_id DESC
                    LIMIT -1 OFFSET ?
                )
                """,
                (max(0, max_runs),),
            ).rowcount
        orphan_problems = conn.execute(
            """
            DELETE FROM problems WHERE
                NOT EXISTS (SELECT 1 FROM results
                            WHERE results.fingerprint = problems.fingerprint)
                AND NOT EXISTS (SELECT 1 FROM cost_revisions
                                WHERE cost_revisions.fingerprint
                                      = problems.fingerprint)
                AND NOT EXISTS (SELECT 1 FROM watch_runs
                                WHERE watch_runs.root_fingerprint
                                      = problems.fingerprint)
            """
        ).rowcount
    return SweepStats(
        results_by_age=results_by_age,
        results_by_size=results_by_size,
        runs_by_age=runs_by_age,
        runs_by_size=runs_by_size,
        revisions_by_age=revisions_by_age,
        orphan_problems=orphan_problems,
    )
