"""SQLite connection discipline for the durable result + history store.

One place owns how the store opens its database: WAL journaling so the
serving layer's readers never block behind a writer, ``synchronous=NORMAL``
(the WAL-safe durability/throughput trade), a generous ``busy_timeout`` so
sibling processes queue instead of failing with ``database is locked``, and
foreign keys enforced — SQLite ships with them off.  Every handle the store
package hands out goes through :func:`connect`, so the pragmas cannot
silently drift between the result cache, the history log and the eviction
sweeps.
"""

from __future__ import annotations

import os
import sqlite3
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator, Union

from ..core.errors import StoreError

#: How long a writer waits on a locked database before giving up (ms).
#: Well above any solve-adjacent write burst; matches the WAL discipline
#: documented for append-heavy monitoring stores.
DEFAULT_BUSY_TIMEOUT_MS = 30_000

#: Pragmas applied to every connection, in order.  ``journal_mode=WAL`` is
#: persistent (stored in the database header); the rest are per-connection
#: and must be re-applied on every open.
_PRAGMAS = (
    "PRAGMA journal_mode=WAL",
    "PRAGMA synchronous=NORMAL",
    "PRAGMA foreign_keys=ON",
)


def connect(path: Union[str, Path],
            busy_timeout_ms: int = DEFAULT_BUSY_TIMEOUT_MS
            ) -> sqlite3.Connection:
    """Open ``path`` with the store's pragma discipline applied.

    Parent directories are created when missing.  The connection is in
    autocommit mode (``isolation_level=None``); multi-statement writes go
    through :func:`transaction`, which issues an explicit
    ``BEGIN IMMEDIATE`` so the write lock is taken up front instead of on
    the first write (avoiding mid-transaction ``SQLITE_BUSY`` upgrades).

    ``check_same_thread`` is disabled because a session may touch its
    result cache from worker threads; callers serialise access with their
    own lock (SQLite itself is compiled threadsafe).

    Raises:
        StoreError: when the database cannot be opened or a pragma fails.
    """
    path = Path(path)
    if path.parent and not path.parent.exists():
        path.parent.mkdir(parents=True, exist_ok=True)
    try:
        conn = sqlite3.connect(os.fspath(path), timeout=busy_timeout_ms / 1000.0,
                               isolation_level=None, check_same_thread=False)
    except sqlite3.Error as exc:
        raise StoreError(f"cannot open result store at {path}: {exc}") from exc
    try:
        conn.execute(f"PRAGMA busy_timeout={int(busy_timeout_ms)}")
        for pragma in _PRAGMAS:
            conn.execute(pragma)
    except sqlite3.Error as exc:
        conn.close()
        raise StoreError(
            f"cannot apply store pragmas on {path}: {exc}") from exc
    return conn


@contextmanager
def transaction(conn: sqlite3.Connection) -> Iterator[sqlite3.Connection]:
    """An immediate write transaction: commit on success, roll back on error.

    ``BEGIN IMMEDIATE`` acquires the write lock at entry (waiting up to the
    connection's busy timeout), so a transaction either starts with the
    lock held or fails before touching anything — never half-way.
    """
    conn.execute("BEGIN IMMEDIATE")
    try:
        yield conn
    except BaseException:
        conn.execute("ROLLBACK")
        raise
    conn.execute("COMMIT")


def pragma_value(conn: sqlite3.Connection, name: str):
    """The current value of a pragma (e.g. ``journal_mode``)."""
    row = conn.execute(f"PRAGMA {name}").fetchone()
    return None if row is None else row[0]
