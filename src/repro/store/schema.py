"""Schema and migrations of the durable result + history database.

The store holds five tables:

* ``problems`` — one row per distinct problem content
  (:meth:`~repro.core.problem.DeploymentProblem.fingerprint`-keyed); the
  anchor every result and revision hangs off.
* ``results`` — one solver result per ``(fingerprint, solver tag)`` pair:
  the durable replacement of the JSON-file-per-result cache, with LRU
  (``last_used_at``) and age (``created_at``) columns the eviction sweeps
  order by.
* ``cost_revisions`` — the re-deployment lineage: which fingerprint a
  revision was drifted from, and by how much.
* ``telemetry`` — one row per executed solve request (status, cache hits,
  timings), the append-heavy monitoring stream.
* ``watch_runs`` / ``watch_events`` — the persisted
  :class:`~repro.api.watch.WatchReport` history: one run row per watch,
  one event row per revision, indexed for "all redeployments for
  fingerprint X since revision N" queries.

Versioning uses ``PRAGMA user_version``: :func:`apply_schema` replays the
``MIGRATIONS`` list from the database's current version inside one write
transaction, so a crash mid-migration leaves the previous version intact.
"""

from __future__ import annotations

import sqlite3

from ..core.errors import StoreError
from .connection import transaction

#: Current schema version; ``len(MIGRATIONS)`` must equal it.
SCHEMA_VERSION = 1

# Individual statements (not one script): sqlite3's executescript() issues
# an implicit COMMIT, which would escape the migration transaction.
_SCHEMA_V1 = """
CREATE TABLE problems (
    fingerprint   TEXT PRIMARY KEY,
    instance_key  TEXT,
    objective     TEXT NOT NULL,
    num_nodes     INTEGER,
    num_instances INTEGER,
    created_at    REAL NOT NULL
);

CREATE TABLE results (
    fingerprint  TEXT NOT NULL REFERENCES problems(fingerprint)
                 ON DELETE CASCADE,
    solver       TEXT NOT NULL,
    version      INTEGER NOT NULL,
    cost         REAL,
    payload      TEXT NOT NULL,
    created_at   REAL NOT NULL,
    last_used_at REAL NOT NULL,
    PRIMARY KEY (fingerprint, solver)
);
CREATE INDEX idx_results_last_used ON results(last_used_at);
CREATE INDEX idx_results_created ON results(created_at);

CREATE TABLE cost_revisions (
    id                 INTEGER PRIMARY KEY,
    fingerprint        TEXT NOT NULL,
    parent_fingerprint TEXT,
    revision           INTEGER NOT NULL,
    max_drift          REAL,
    created_at         REAL NOT NULL
);
CREATE INDEX idx_cost_revisions_parent
    ON cost_revisions(parent_fingerprint);

CREATE TABLE telemetry (
    id               INTEGER PRIMARY KEY,
    request_id       TEXT,
    fingerprint      TEXT,
    solver           TEXT,
    status           TEXT NOT NULL,
    compile_cache_hit INTEGER,
    compile_time_s   REAL,
    solve_time_s     REAL,
    total_time_s     REAL,
    repair_applied   INTEGER,
    created_at       REAL NOT NULL
);
CREATE INDEX idx_telemetry_fingerprint ON telemetry(fingerprint);

CREATE TABLE watch_runs (
    run_id           INTEGER PRIMARY KEY,
    root_fingerprint TEXT NOT NULL,
    solver           TEXT NOT NULL,
    objective        TEXT NOT NULL,
    final_cost       REAL,
    resolves         INTEGER NOT NULL,
    cache_hits       INTEGER NOT NULL,
    redeployments    INTEGER NOT NULL,
    holds            INTEGER NOT NULL,
    created_at       REAL NOT NULL
);
CREATE INDEX idx_watch_runs_root ON watch_runs(root_fingerprint);

CREATE TABLE watch_events (
    run_id          INTEGER NOT NULL REFERENCES watch_runs(run_id)
                    ON DELETE CASCADE,
    revision        INTEGER NOT NULL,
    fingerprint     TEXT NOT NULL,
    reason          TEXT NOT NULL,
    drift           REAL,
    refresh_time_s  REAL NOT NULL,
    engine_refreshed INTEGER NOT NULL,
    incumbent_cost  REAL,
    resolved        INTEGER NOT NULL,
    cache_hit       INTEGER NOT NULL,
    warm_start      INTEGER NOT NULL,
    solve_time_s    REAL NOT NULL,
    cost            REAL,
    redeployed      INTEGER NOT NULL,
    solver          TEXT NOT NULL,
    PRIMARY KEY (run_id, revision)
);
CREATE INDEX idx_watch_events_fingerprint
    ON watch_events(fingerprint, revision);
"""


def _migrate_v1(conn: sqlite3.Connection) -> None:
    for statement in _SCHEMA_V1.split(";"):
        if statement.strip():
            conn.execute(statement)


#: Ordered migrations; index ``i`` upgrades ``user_version`` i -> i + 1.
MIGRATIONS = (_migrate_v1,)

assert len(MIGRATIONS) == SCHEMA_VERSION


def schema_version(conn: sqlite3.Connection) -> int:
    """The database's current ``user_version``."""
    return int(conn.execute("PRAGMA user_version").fetchone()[0])


def apply_schema(conn: sqlite3.Connection) -> int:
    """Bring the database up to :data:`SCHEMA_VERSION`; returns the version.

    Each pending migration runs in its own write transaction (including the
    version bump), so a killed process leaves the database at a consistent
    intermediate version the next open resumes from.

    Raises:
        StoreError: when the database is *newer* than this code (opening it
            with an old library must fail loudly, not misread the schema),
            or a migration fails.
    """
    version = schema_version(conn)
    if version > SCHEMA_VERSION:
        raise StoreError(
            f"result store schema version {version} is newer than the "
            f"supported version {SCHEMA_VERSION}; upgrade the library"
        )
    while version < SCHEMA_VERSION:
        migration = MIGRATIONS[version]
        try:
            with transaction(conn):
                migration(conn)
                # PRAGMA cannot be parameterised; version is a trusted int.
                conn.execute(f"PRAGMA user_version = {version + 1}")
        except sqlite3.Error as exc:
            raise StoreError(
                f"result store migration to version {version + 1} failed: "
                f"{exc}"
            ) from exc
        version += 1
    return version
