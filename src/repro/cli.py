"""Command-line interface for the ClouDiA reproduction.

The CLI exposes the advisor on the simulated cloud so the full pipeline can
be exercised without writing Python:

* ``python -m repro advise --template mesh --rows 4 --cols 5`` — allocate,
  measure, search and print the recommended deployment plan;
* ``python -m repro measure --instances 20`` — run a pairwise latency
  measurement and print per-link statistics;
* ``python -m repro providers`` — compare latency heterogeneity of the
  built-in provider profiles;
* ``python -m repro templates`` — list the communication-graph templates.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .analysis import empirical_cdf, format_table
from .cloud import ProviderProfile, SimulatedCloud
from .core import CommunicationGraph, LatencyMetric, Objective
from .core.advisor import AdvisorConfig, ClouDiA, MeasurementConfig
from .solvers import (
    CPLongestLinkSolver,
    GreedyG2,
    MIPLongestPathSolver,
    PortfolioSolver,
    RandomSearch,
)

#: Graph templates the CLI can build, mapping name -> builder description.
TEMPLATE_DESCRIPTIONS = {
    "mesh": "2-D mesh (behavioral simulations); use --rows and --cols",
    "mesh3d": "3-D mesh; use --rows, --cols and --depth",
    "tree": "aggregation tree (search / web services); use --branching and --depth",
    "bipartite": "front-end / storage bipartite graph (key-value stores); "
                 "use --frontends and --storage",
    "ring": "bidirectional ring; use --nodes",
    "hypercube": "boolean hypercube; use --dimension",
}


def build_graph(args: argparse.Namespace) -> CommunicationGraph:
    """Construct the communication graph selected by the CLI arguments."""
    template = args.template
    if template == "mesh":
        return CommunicationGraph.mesh_2d(args.rows, args.cols)
    if template == "mesh3d":
        return CommunicationGraph.mesh_3d(args.rows, args.cols, args.depth)
    if template == "tree":
        return CommunicationGraph.aggregation_tree(args.branching, args.depth)
    if template == "bipartite":
        return CommunicationGraph.bipartite(args.frontends, args.storage)
    if template == "ring":
        return CommunicationGraph.ring(args.nodes)
    if template == "hypercube":
        return CommunicationGraph.hypercube(args.dimension)
    raise SystemExit(f"unknown template {template!r}; see 'templates' command")


def build_solver(name: str, objective: Objective, seed: Optional[int]):
    """Instantiate the solver selected on the command line (None = paper default)."""
    if name == "auto":
        return None
    if name == "cp":
        return CPLongestLinkSolver(seed=seed)
    if name == "mip":
        return MIPLongestPathSolver(backend="bnb")
    if name == "greedy":
        return GreedyG2()
    if name == "random":
        return RandomSearch.r2(seed=seed)
    if name == "portfolio":
        return PortfolioSolver(seed=seed)
    raise SystemExit(f"unknown solver {name!r}")


def command_advise(args: argparse.Namespace) -> int:
    """Run the full advisor pipeline and print the recommended plan."""
    graph = build_graph(args)
    objective = Objective(args.objective)
    cloud = SimulatedCloud(profile=ProviderProfile.by_name(args.provider),
                           seed=args.seed)
    config = AdvisorConfig(
        objective=objective,
        over_allocation_ratio=args.over_allocation,
        metric=LatencyMetric(args.metric),
        solver=build_solver(args.solver, objective, args.seed),
        solver_time_limit_s=args.time_limit,
        measurement=MeasurementConfig(scheme=args.measurement,
                                      target_samples_per_link=args.samples),
        seed=args.seed,
    )
    advisor = ClouDiA(cloud, config)
    report = advisor.recommend(graph)

    print(format_table(
        ["quantity", "value"],
        [
            ("application nodes", graph.num_nodes),
            ("communication edges", graph.num_edges),
            ("instances allocated", len(report.allocated_instances)),
            ("instances terminated", len(report.terminated_instances)),
            ("measurement time [simulated ms]", report.measurement_time_ms),
            ("search time [s]", report.search_time_s),
            ("solver", report.solver_result.solver_name),
            (f"default {objective.value} cost [ms]", report.default_predicted_cost),
            (f"optimised {objective.value} cost [ms]", report.predicted_cost),
            ("predicted improvement", f"{report.predicted_improvement:.1%}"),
        ],
        title="ClouDiA recommendation",
    ))
    if args.show_plan:
        print()
        print(format_table(
            ["node", "instance", "private ip"],
            [
                (node, report.plan.instance_for(node),
                 cloud.private_ip(report.plan.instance_for(node)))
                for node in graph.nodes
            ],
            title="deployment plan",
        ))
    return 0


def command_measure(args: argparse.Namespace) -> int:
    """Measure pairwise latencies on a fresh allocation and print statistics."""
    cloud = SimulatedCloud(profile=ProviderProfile.by_name(args.provider),
                           seed=args.seed)
    ids = [instance.instance_id for instance in cloud.allocate(args.instances)]
    scheme = MeasurementConfig(scheme=args.measurement,
                               target_samples_per_link=args.samples
                               ).build_scheme(seed=args.seed)
    result = scheme.measure(cloud, ids, target_samples_per_link=args.samples)
    matrix = result.to_cost_matrix()
    cdf = empirical_cdf(matrix.link_costs())
    print(format_table(
        ["quantity", "value"],
        [
            ("instances", len(ids)),
            ("probes sent", result.num_probes),
            ("simulated measurement time [ms]", result.elapsed_ms),
            ("min link latency [ms]", matrix.min_cost()),
            ("median link latency [ms]", cdf.quantile(0.5)),
            ("p90 link latency [ms]", cdf.quantile(0.9)),
            ("max link latency [ms]", matrix.max_cost()),
            ("p90 / p10 spread", cdf.spread(0.1, 0.9)),
        ],
        title=f"pairwise latency measurement ({scheme.name})",
    ))
    return 0


def command_providers(args: argparse.Namespace) -> int:
    """Compare latency heterogeneity across the built-in provider profiles."""
    rows = []
    for name in ("ec2", "gce", "rackspace"):
        cloud = SimulatedCloud(profile=ProviderProfile.by_name(name), seed=args.seed)
        ids = [instance.instance_id for instance in cloud.allocate(args.instances)]
        cdf = empirical_cdf(cloud.true_cost_matrix(ids).link_costs())
        rows.append((name, cdf.quantile(0.1), cdf.quantile(0.5), cdf.quantile(0.9),
                     cdf.spread(0.1, 0.9)))
    print(format_table(
        ["provider", "p10 [ms]", "median [ms]", "p90 [ms]", "p90/p10 spread"],
        rows, title=f"latency heterogeneity ({args.instances} instances per provider)",
    ))
    return 0


def command_templates(_args: argparse.Namespace) -> int:
    """List the communication-graph templates the CLI can build."""
    print(format_table(
        ["template", "description"],
        sorted(TEMPLATE_DESCRIPTIONS.items()),
        title="communication graph templates",
    ))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ClouDiA deployment advisor (reproduction) command-line interface",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--provider", default="ec2",
                         choices=["ec2", "gce", "rackspace"],
                         help="latency profile of the simulated cloud")
        sub.add_argument("--seed", type=int, default=0, help="random seed")
        sub.add_argument("--measurement", default="staged",
                         choices=["staged", "uncoordinated", "token-passing"],
                         help="pairwise latency measurement scheme")
        sub.add_argument("--samples", type=int, default=10,
                         help="target RTT samples per directed link")

    advise = subparsers.add_parser("advise", help="run the full advisor pipeline")
    add_common(advise)
    advise.add_argument("--template", default="mesh",
                        choices=sorted(TEMPLATE_DESCRIPTIONS),
                        help="communication graph template")
    advise.add_argument("--rows", type=int, default=4)
    advise.add_argument("--cols", type=int, default=5)
    advise.add_argument("--depth", type=int, default=2)
    advise.add_argument("--branching", type=int, default=3)
    advise.add_argument("--frontends", type=int, default=4)
    advise.add_argument("--storage", type=int, default=12)
    advise.add_argument("--nodes", type=int, default=8)
    advise.add_argument("--dimension", type=int, default=3)
    advise.add_argument("--objective", default=Objective.LONGEST_LINK.value,
                        choices=[objective.value for objective in Objective])
    advise.add_argument("--metric", default=LatencyMetric.MEAN.value,
                        choices=[metric.value for metric in LatencyMetric])
    advise.add_argument("--solver", default="auto",
                        choices=["auto", "cp", "mip", "greedy", "random", "portfolio"])
    advise.add_argument("--over-allocation", type=float, default=0.10,
                        help="fraction of extra instances to allocate")
    advise.add_argument("--time-limit", type=float, default=5.0,
                        help="solver time limit in seconds")
    advise.add_argument("--show-plan", action="store_true",
                        help="print the full node-to-instance mapping")
    advise.set_defaults(handler=command_advise)

    measure = subparsers.add_parser("measure",
                                    help="measure pairwise latencies on a fresh allocation")
    add_common(measure)
    measure.add_argument("--instances", type=int, default=20)
    measure.set_defaults(handler=command_measure)

    providers = subparsers.add_parser("providers",
                                      help="compare latency heterogeneity across providers")
    providers.add_argument("--instances", type=int, default=30)
    providers.add_argument("--seed", type=int, default=0)
    providers.set_defaults(handler=command_providers)

    templates = subparsers.add_parser("templates",
                                      help="list communication graph templates")
    templates.set_defaults(handler=command_templates)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
