"""Command-line interface for the ClouDiA reproduction.

The CLI exposes the advisor on the simulated cloud so the full pipeline can
be exercised without writing Python:

* ``python -m repro advise --template mesh --rows 4 --cols 5`` — allocate,
  measure, search and print the recommended deployment plan;
* ``python -m repro make-problem --template mesh --out problem.json`` —
  allocate and measure, then serialize the resulting
  :class:`~repro.core.problem.DeploymentProblem` to JSON;
* ``python -m repro solve --problem problem.json --out response.json`` —
  solve a serialized problem and write the response;
* ``python -m repro solve-batch --requests batch.json`` — run a batch of
  serialized requests through one advisor session (shared compilations);
* ``python -m repro make-trace --problem problem.json --out trace.json`` —
  generate a replayable stream of drifted cost-matrix windows;
* ``python -m repro watch --problem problem.json --trace trace.json`` —
  replay a trace through the live re-deployment pipeline and print the
  re-deployment log (in-place cost refreshes, warm re-solves, persistent
  result-cache hits);
* ``python -m repro solvers`` — list the registered solvers;
* ``python -m repro measure --instances 20`` — run a pairwise latency
  measurement and print per-link statistics;
* ``python -m repro providers`` — compare latency heterogeneity of the
  built-in provider profiles;
* ``python -m repro templates`` — list the communication-graph templates.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional, Sequence, Union

import numpy as np

from .analysis import empirical_cdf, format_table
from .api import AdvisorSession, SolveRequest, SolverResponse, WatchPolicy
from .cloud import ProviderProfile, SimulatedCloud
from .core import (
    CommunicationGraph,
    CostMatrix,
    DeploymentProblem,
    LatencyMetric,
    Objective,
    workers_spec,
)
from .core.advisor import AdvisorConfig, ClouDiA, MeasurementConfig
from .core.errors import ClouDiAError
from .solvers import DeploymentSolver, SearchBudget
from .solvers.registry import default_registry
from .store import SQLiteResultCache

#: Graph templates the CLI can build, mapping name -> builder description.
TEMPLATE_DESCRIPTIONS = {
    "mesh": "2-D mesh (behavioral simulations); use --rows and --cols",
    "mesh3d": "3-D mesh; use --rows, --cols and --depth",
    "tree": "aggregation tree (search / web services); use --branching and --depth",
    "bipartite": "front-end / storage bipartite graph (key-value stores); "
                 "use --frontends and --storage",
    "ring": "bidirectional ring; use --nodes",
    "hypercube": "boolean hypercube; use --dimension",
}

#: Historical ``advise --solver`` names that map to a different registry
#: key.  Applied only by the legacy ``advise`` command: ``solve`` and
#: ``solve-batch`` take registry keys verbatim, so the registered
#: ``random`` solver stays reachable there.
ADVISE_SOLVER_ALIASES = {"random": "r2"}


def build_graph(args: argparse.Namespace) -> CommunicationGraph:
    """Construct the communication graph selected by the CLI arguments."""
    template = args.template
    if template == "mesh":
        return CommunicationGraph.mesh_2d(args.rows, args.cols)
    if template == "mesh3d":
        return CommunicationGraph.mesh_3d(args.rows, args.cols, args.depth)
    if template == "tree":
        return CommunicationGraph.aggregation_tree(args.branching, args.depth)
    if template == "bipartite":
        return CommunicationGraph.bipartite(args.frontends, args.storage)
    if template == "ring":
        return CommunicationGraph.ring(args.nodes)
    if template == "hypercube":
        return CommunicationGraph.hypercube(args.dimension)
    raise SystemExit(f"unknown template {template!r}; see 'templates' command")


def solver_choices(aliases: bool = False) -> List[str]:
    """Solver names accepted on the command line."""
    names = set(default_registry.available())
    if aliases:
        names |= set(ADVISE_SOLVER_ALIASES)
    return ["auto"] + sorted(names)


def build_solver(name: str, seed: Optional[int]) -> Optional[DeploymentSolver]:
    """Instantiate the solver selected on the command line (None = paper default).

    Resolution goes through the solver registry, which also routes the seed
    into every solver that accepts one (including the MIP solvers, whose
    seed the old hand-rolled factory silently dropped).  Historical
    ``advise`` names are translated first (``random`` -> ``r2``).
    """
    if name == "auto":
        return None
    key = ADVISE_SOLVER_ALIASES.get(name, name)
    if key not in default_registry:
        raise SystemExit(f"unknown solver {name!r}; available: "
                         f"{', '.join(solver_choices(aliases=True))}")
    return default_registry.make(
        key, **default_registry.seeded_config(key, seed))


def command_advise(args: argparse.Namespace) -> int:
    """Run the full advisor pipeline and print the recommended plan."""
    graph = build_graph(args)
    objective = Objective(args.objective)
    cloud = SimulatedCloud(profile=ProviderProfile.by_name(args.provider),
                           seed=args.seed)
    config = AdvisorConfig(
        objective=objective,
        over_allocation_ratio=args.over_allocation,
        metric=LatencyMetric(args.metric),
        solver=build_solver(args.solver, args.seed),
        solver_time_limit_s=args.time_limit,
        measurement=MeasurementConfig(scheme=args.measurement,
                                      target_samples_per_link=args.samples),
        seed=args.seed,
    )
    advisor = ClouDiA(cloud, config)
    report = advisor.recommend(graph)

    print(format_table(
        ["quantity", "value"],
        [
            ("application nodes", graph.num_nodes),
            ("communication edges", graph.num_edges),
            ("instances allocated", len(report.allocated_instances)),
            ("instances terminated", len(report.terminated_instances)),
            ("measurement time [simulated ms]", report.measurement_time_ms),
            ("search time [s]", report.search_time_s),
            ("solver", report.solver_result.solver_name),
            (f"default {objective.value} cost [ms]", report.default_predicted_cost),
            (f"optimised {objective.value} cost [ms]", report.predicted_cost),
            ("predicted improvement", f"{report.predicted_improvement:.1%}"),
        ],
        title="ClouDiA recommendation",
    ))
    if args.show_plan:
        print()
        print(format_table(
            ["node", "instance", "private ip"],
            [
                (node, report.plan.instance_for(node),
                 cloud.private_ip(report.plan.instance_for(node)))
                for node in graph.nodes
            ],
            title="deployment plan",
        ))
    return 0


def _write_json(path: str, payload: Dict[str, Any]) -> None:
    # allow_nan=False: every artifact the CLI emits must be strict RFC 8259
    # JSON (jq and non-Python consumers reject the bare Infinity/NaN tokens
    # Python would otherwise write).  Payload builders map non-finite
    # floats to null themselves; a regression fails loudly here instead of
    # producing an unparseable file.
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, allow_nan=False)
        handle.write("\n")


def _read_json(path: str) -> Any:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def command_make_problem(args: argparse.Namespace) -> int:
    """Allocate, measure, and serialize a DeploymentProblem to JSON.

    Reuses the advisor's allocation and measurement stages (stages 1-2 of
    Fig. 3), so sizing and measurement policy cannot drift from ``advise``.
    """
    graph = build_graph(args)
    objective = Objective(args.objective)
    cloud = SimulatedCloud(profile=ProviderProfile.by_name(args.provider),
                           seed=args.seed)
    advisor = ClouDiA(cloud, AdvisorConfig(
        objective=objective,
        over_allocation_ratio=args.over_allocation,
        metric=LatencyMetric(args.metric),
        measurement=MeasurementConfig(scheme=args.measurement,
                                      target_samples_per_link=args.samples),
        seed=args.seed,
    ))
    ids = advisor.allocate(graph)
    measurement = advisor.measure(ids)
    costs = measurement.to_cost_matrix(metric=advisor.config.metric)
    problem = DeploymentProblem(
        graph, costs, objective=objective,
        metadata={
            "template": args.template,
            "provider": args.provider,
            "measurement_scheme": args.measurement,
            "metric": args.metric,
            "seed": args.seed,
        },
    )
    _write_json(args.out, problem.to_dict())
    print(format_table(
        ["quantity", "value"],
        [
            ("application nodes", graph.num_nodes),
            ("communication edges", graph.num_edges),
            ("instances allocated", len(ids)),
            ("objective", objective.value),
            ("measurement time [simulated ms]", measurement.elapsed_ms),
            ("problem written to", args.out),
        ],
        title="serialized deployment problem",
    ))
    return 0


def _print_response(response: SolverResponse,
                    problem: DeploymentProblem) -> None:
    rows = [
        ("request id", response.request_id),
        ("solver", response.solver),
        ("status", response.status),
    ]
    if response.ok:
        result = response.result
        baseline = problem.evaluate(problem.default_plan())
        rows.extend([
            (f"{result.objective.value} cost [ms]", result.cost),
            ("default deployment cost [ms]", baseline),
            ("optimality proven", result.optimal),
            ("iterations", result.iterations),
            ("solve time [s]", f"{result.solve_time_s:.3f}"),
        ])
    else:
        rows.append(("error", response.error))
    if response.telemetry is not None:
        rows.append(("compile cache hit",
                     response.telemetry.compile_cache_hit))
        if problem.constraints is not None:
            rows.append(("constraint repair applied",
                         response.telemetry.repair_applied))
    print(format_table(["quantity", "value"], rows,
                       title="solver response"))


def _budget_from_flag(time_limit: float) -> Optional[SearchBudget]:
    """``--time-limit`` semantics: positive seconds, or 0 for no limit."""
    if time_limit <= 0:
        return None
    return SearchBudget.seconds(time_limit)


def _eval_workers_flag(value: Optional[str]) -> Optional[Union[int, str]]:
    """``--eval-workers`` semantics: ``auto``, a positive int, a
    ``procs[:N]`` process-pool spec, or unset."""
    if value is None:
        return None
    if value == "auto":
        return "auto"
    if value.startswith("procs"):
        try:
            workers_spec(value)  # validate the spec eagerly
        except ValueError as exc:
            raise ClouDiAError(str(exc)) from None
        return value
    try:
        return int(value)
    except ValueError:
        raise ClouDiAError(
            f"--eval-workers must be 'auto', 'procs[:N]' or a positive "
            f"integer, got {value!r}"
        ) from None


def _peek_block_flag(value: Optional[int]) -> Optional[int]:
    """``--peek-block`` semantics: a positive block size (1 disables
    batching), or unset to keep each solver's default."""
    if value is None:
        return None
    if value < 1:
        raise ClouDiAError(
            f"--peek-block must be a positive integer, got {value}")
    return value


def command_solve(args: argparse.Namespace) -> int:
    """Solve a serialized problem JSON and optionally write the response."""
    problem = DeploymentProblem.from_dict(_read_json(args.problem))
    extra = json.loads(args.solver_config) if args.solver_config else None
    request = SolveRequest(
        problem=problem,
        solver=args.solver,
        config=default_registry.seeded_config(args.solver, args.seed, extra),
        budget=_budget_from_flag(args.time_limit),
    )
    session = AdvisorSession(eval_workers=_eval_workers_flag(args.eval_workers),
                             peek_block=_peek_block_flag(args.peek_block))
    try:
        response = session.solve(request)
    except (ClouDiAError, ValueError, TypeError) as exc:
        # Solver / problem failures exit 1 — the same error classes
        # solve-batch captures per request; usage and IO errors exit 2
        # via main().
        print(f"error: {exc}", file=sys.stderr)
        return 1
    _print_response(response, problem)
    if args.out:
        _write_json(args.out, response.to_dict())
        print(f"response written to {args.out}")
    return 0


def command_solve_batch(args: argparse.Namespace) -> int:
    """Run a batch of serialized requests through one advisor session."""
    requests: List[SolveRequest] = []
    if args.requests:
        payload = _read_json(args.requests)
        if isinstance(payload, dict):
            entries = payload.get("requests")
            if entries is None:
                raise ClouDiAError(
                    f"{args.requests} must contain a top-level 'requests' "
                    f"list (or be a bare JSON list of requests)"
                )
        else:
            entries = payload
        if not isinstance(entries, list):
            raise ClouDiAError(
                f"'requests' in {args.requests} must be a list, got "
                f"{type(entries).__name__}"
            )
        requests.extend(SolveRequest.from_dict(entry) for entry in entries)
    for path in args.problem or []:
        problem = DeploymentProblem.from_dict(_read_json(path))
        requests.append(SolveRequest(
            problem=problem, solver=args.solver,
            config=default_registry.seeded_config(args.solver, args.seed),
            budget=_budget_from_flag(args.time_limit),
        ))
    if not requests:
        print("error: solve-batch needs --requests and/or --problem",
              file=sys.stderr)
        return 2

    session = AdvisorSession(max_workers=args.workers,
                             eval_workers=_eval_workers_flag(args.eval_workers),
                             peek_block=_peek_block_flag(args.peek_block))
    responses = session.solve_many(requests)

    rows = []
    for response in responses:
        telemetry = response.telemetry
        rows.append((
            response.request_id,
            response.solver,
            response.status,
            "-" if response.cost is None else f"{response.cost:.4f}",
            "-" if telemetry is None else
            ("hit" if telemetry.compile_cache_hit else "miss"),
            "-" if telemetry is None else f"{telemetry.total_time_s:.3f}",
        ))
    print(format_table(
        ["request", "solver", "status", "cost [ms]", "compile cache", "time [s]"],
        rows, title=f"solve-batch ({len(responses)} requests)",
    ))
    stats = session.stats
    print(f"compilations: {stats.compilations}, "
          f"cache hits: {stats.compile_cache_hits} "
          f"(hit rate {stats.hit_rate:.0%})")
    if args.out:
        _write_json(args.out, {
            "responses": [response.to_dict() for response in responses],
        })
        print(f"responses written to {args.out}")
    return 0 if all(response.ok for response in responses) else 1


def command_make_trace(args: argparse.Namespace) -> int:
    """Generate a replayable trace of drifted cost-matrix windows.

    Each window applies per-link lognormal jitter (relative scale
    ``--jitter``) to the problem's measured costs — the measurement noise a
    periodic re-measurement would see — and, from ``--spike-window`` on,
    multiplies ``--spike-links`` randomly chosen links by
    ``--spike-factor``, modelling a persistent latency shift that should
    trigger a re-deployment.
    """
    problem = DeploymentProblem.from_dict(_read_json(args.problem))
    base = problem.costs.as_array()
    ids = list(problem.costs.instance_ids)
    m = len(ids)
    rng = np.random.default_rng(args.seed)
    off_diagonal = ~np.eye(m, dtype=bool)
    spiked: List[Any] = []
    if args.spike_links > 0 and 0 <= args.spike_window < args.windows:
        pairs = np.argwhere(off_diagonal)
        chosen = pairs[rng.choice(len(pairs),
                                  size=min(args.spike_links, len(pairs)),
                                  replace=False)]
        spiked = [(int(a), int(b)) for a, b in chosen]
    windows = []
    for window in range(args.windows):
        matrix = base.copy()
        if args.jitter > 0:
            jitter = rng.lognormal(mean=0.0, sigma=args.jitter, size=(m, m))
            matrix[off_diagonal] *= jitter[off_diagonal]
        if spiked and window >= args.spike_window:
            for a, b in spiked:
                matrix[a, b] *= args.spike_factor
        windows.append(CostMatrix(ids, matrix).to_dict())
    _write_json(args.out, {"version": 1, "windows": windows})
    print(format_table(
        ["quantity", "value"],
        [
            ("instances", m),
            ("windows", args.windows),
            ("jitter (lognormal sigma)", args.jitter),
            ("spiked links", len(spiked)),
            ("spike factor", args.spike_factor if spiked else "-"),
            ("spike from window", args.spike_window if spiked else "-"),
            ("trace written to", args.out),
        ],
        title="re-deployment trace",
    ))
    return 0


def command_watch(args: argparse.Namespace) -> int:
    """Replay a trace through the live pipeline; print the re-deploy log."""
    problem = DeploymentProblem.from_dict(_read_json(args.problem))
    payload = _read_json(args.trace)
    if isinstance(payload, dict):
        entries = payload.get("windows")
        if entries is None:
            raise ClouDiAError(
                f"{args.trace} must contain a top-level 'windows' list "
                f"(or be a bare JSON list of cost matrices)"
            )
    else:
        entries = payload
    if not isinstance(entries, list):
        raise ClouDiAError(
            f"'windows' in {args.trace} must be a list, got "
            f"{type(entries).__name__}"
        )
    matrices = [CostMatrix.from_dict(entry) for entry in entries]
    policy = WatchPolicy(
        solver=args.solver,
        config=default_registry.seeded_config(args.solver, args.seed),
        budget=_budget_from_flag(args.time_limit),
        drift_threshold=args.drift_threshold,
        degradation_threshold=args.degradation_threshold,
        warm_start=not args.cold,
    )
    if args.store and args.cache_dir:
        print("error: --store and --cache-dir are alternative result "
              "caches; pass one of them", file=sys.stderr)
        return 2
    if args.store:
        result_cache = SQLiteResultCache(args.store)
    else:
        result_cache = args.cache_dir
    session = AdvisorSession(
        result_cache=result_cache,
        eval_workers=_eval_workers_flag(args.eval_workers),
    )
    report = session.watch(problem, matrices, policy)

    rows = []
    for event in report.events:
        if not event.resolved:
            action = "hold"
        elif event.cache_hit:
            action = f"{event.reason} (cached)"
        else:
            action = event.reason
        rows.append((
            event.revision,
            action,
            f"{event.drift:.1%}",
            "-" if event.incumbent_cost == float("inf")
            else f"{event.incumbent_cost:.4f}",
            f"{event.cost:.4f}",
            "refresh" if event.engine_refreshed else "compile",
            "warm" if event.warm_start else
            ("-" if not event.resolved or event.cache_hit else "cold"),
            f"{event.solve_time_s:.3f}",
            "yes" if event.redeployed else "no",
        ))
    print(format_table(
        ["rev", "action", "drift", "incumbent", "cost", "engine", "start",
         "solve [s]", "redeployed"],
        rows, title=f"re-deployment log ({report.problem.objective.value}, "
                    f"solver {report.events[0].solver})",
    ))
    stats = session.stats
    print(f"revisions: {len(report.events) - 1}, "
          f"re-solves: {report.resolves}, "
          f"result-cache hits: {report.cache_hits}, "
          f"holds: {report.holds}, "
          f"redeployments: {report.redeployments}; "
          f"engine refreshes: {stats.cost_refreshes}, "
          f"recompiles: {stats.cost_recompiles}")
    if args.store:
        runs = len(session.result_cache.history.runs())
        print(f"durable store {args.store}: "
              f"{len(session.result_cache)} results, "
              f"{runs} recorded watch runs")
        session.result_cache.close()
    if args.out:
        _write_json(args.out, report.to_dict())
        print(f"re-deployment log written to {args.out}")
    return 0


def command_serve(args: argparse.Namespace) -> int:
    """Run the multi-tenant HTTP advisor service until SIGTERM/SIGINT."""
    from .serve import ServeConfig, create_app, serve_until_signal

    weights: Dict[str, float] = {}
    for entry in args.tenant_weight or []:
        tenant, separator, raw = entry.partition("=")
        if not separator or not tenant:
            raise ClouDiAError(
                f"--tenant-weight expects TENANT=WEIGHT, got {entry!r}")
        try:
            weights[tenant] = float(raw)
        except ValueError:
            raise ClouDiAError(
                f"--tenant-weight weight must be a number, got {raw!r}"
            ) from None
    config = ServeConfig(
        workers=args.workers,
        max_queue=args.queue_size,
        request_timeout_s=args.request_timeout,
        tenant_header=args.tenant_header,
        tenant_weights=weights,
        eval_workers=_eval_workers_flag(args.eval_workers),
    )
    app = create_app(store=args.store, config=config, start_workers=False)
    return serve_until_signal(
        app, args.host, args.port, quiet=not args.verbose,
        ready_message=(
            f"advisor service listening on http://{args.host}:{args.port} "
            f"({args.workers} workers, queue {args.queue_size}, "
            f"store {args.store or 'none'})"
        ),
    )


def command_solvers(args: argparse.Namespace) -> int:
    """List the solvers registered in the default registry."""
    if getattr(args, "json", False):
        # The machine-readable discovery path: the same payload the
        # service's GET /v1/solvers route serves, so scripts never have
        # to parse the human-readable table.
        print(json.dumps(
            {"solvers": [spec.describe()
                         for spec in default_registry.specs()]},
            indent=2, allow_nan=False,
        ))
        return 0
    rows = []
    for spec in default_registry.specs():
        objectives = ", ".join(obj.value for obj in spec.objectives)
        size = "-" if spec.max_nodes is None else f"<= {spec.max_nodes} nodes"
        constraints = "native" if spec.supports_constraints else "repair"
        warm = "yes" if spec.supports_warm_start else "no"
        best = "yes" if spec.supports_best_improvement else "no"
        rows.append((spec.key, objectives, size, constraints, warm, best,
                     spec.summary))
    print(format_table(
        ["key", "objectives", "practical size", "constraints", "warm start",
         "best improve", "description"],
        rows, title="registered solvers",
    ))
    return 0


def command_measure(args: argparse.Namespace) -> int:
    """Measure pairwise latencies on a fresh allocation and print statistics."""
    cloud = SimulatedCloud(profile=ProviderProfile.by_name(args.provider),
                           seed=args.seed)
    ids = [instance.instance_id for instance in cloud.allocate(args.instances)]
    scheme = MeasurementConfig(scheme=args.measurement,
                               target_samples_per_link=args.samples
                               ).build_scheme(seed=args.seed)
    result = scheme.measure(cloud, ids, target_samples_per_link=args.samples)
    matrix = result.to_cost_matrix()
    cdf = empirical_cdf(matrix.link_costs())
    print(format_table(
        ["quantity", "value"],
        [
            ("instances", len(ids)),
            ("probes sent", result.num_probes),
            ("simulated measurement time [ms]", result.elapsed_ms),
            ("min link latency [ms]", matrix.min_cost()),
            ("median link latency [ms]", cdf.quantile(0.5)),
            ("p90 link latency [ms]", cdf.quantile(0.9)),
            ("max link latency [ms]", matrix.max_cost()),
            ("p90 / p10 spread", cdf.spread(0.1, 0.9)),
        ],
        title=f"pairwise latency measurement ({scheme.name})",
    ))
    return 0


def command_providers(args: argparse.Namespace) -> int:
    """Compare latency heterogeneity across the built-in provider profiles."""
    rows = []
    for name in ("ec2", "gce", "rackspace"):
        cloud = SimulatedCloud(profile=ProviderProfile.by_name(name), seed=args.seed)
        ids = [instance.instance_id for instance in cloud.allocate(args.instances)]
        cdf = empirical_cdf(cloud.true_cost_matrix(ids).link_costs())
        rows.append((name, cdf.quantile(0.1), cdf.quantile(0.5), cdf.quantile(0.9),
                     cdf.spread(0.1, 0.9)))
    print(format_table(
        ["provider", "p10 [ms]", "median [ms]", "p90 [ms]", "p90/p10 spread"],
        rows, title=f"latency heterogeneity ({args.instances} instances per provider)",
    ))
    return 0


def command_templates(_args: argparse.Namespace) -> int:
    """List the communication-graph templates the CLI can build."""
    print(format_table(
        ["template", "description"],
        sorted(TEMPLATE_DESCRIPTIONS.items()),
        title="communication graph templates",
    ))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ClouDiA deployment advisor (reproduction) command-line interface",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--provider", default="ec2",
                         choices=["ec2", "gce", "rackspace"],
                         help="latency profile of the simulated cloud")
        sub.add_argument("--seed", type=int, default=0, help="random seed")
        sub.add_argument("--measurement", default="staged",
                         choices=["staged", "uncoordinated", "token-passing"],
                         help="pairwise latency measurement scheme")
        sub.add_argument("--samples", type=int, default=10,
                         help="target RTT samples per directed link")

    advise = subparsers.add_parser("advise", help="run the full advisor pipeline")
    add_common(advise)
    advise.add_argument("--template", default="mesh",
                        choices=sorted(TEMPLATE_DESCRIPTIONS),
                        help="communication graph template")
    advise.add_argument("--rows", type=int, default=4)
    advise.add_argument("--cols", type=int, default=5)
    advise.add_argument("--depth", type=int, default=2)
    advise.add_argument("--branching", type=int, default=3)
    advise.add_argument("--frontends", type=int, default=4)
    advise.add_argument("--storage", type=int, default=12)
    advise.add_argument("--nodes", type=int, default=8)
    advise.add_argument("--dimension", type=int, default=3)
    advise.add_argument("--objective", default=Objective.LONGEST_LINK.value,
                        choices=[objective.value for objective in Objective])
    advise.add_argument("--metric", default=LatencyMetric.MEAN.value,
                        choices=[metric.value for metric in LatencyMetric])
    advise.add_argument("--solver", default="auto",
                        choices=solver_choices(aliases=True),
                        help="solver registry key ('random' is a legacy "
                             "alias for 'r2' here)")
    advise.add_argument("--over-allocation", type=float, default=0.10,
                        help="fraction of extra instances to allocate")
    advise.add_argument("--time-limit", type=float, default=5.0,
                        help="solver time limit in seconds")
    advise.add_argument("--show-plan", action="store_true",
                        help="print the full node-to-instance mapping")
    advise.set_defaults(handler=command_advise)

    make_problem = subparsers.add_parser(
        "make-problem",
        help="allocate + measure, then write a DeploymentProblem JSON")
    add_common(make_problem)
    make_problem.add_argument("--template", default="mesh",
                              choices=sorted(TEMPLATE_DESCRIPTIONS),
                              help="communication graph template")
    make_problem.add_argument("--rows", type=int, default=4)
    make_problem.add_argument("--cols", type=int, default=5)
    make_problem.add_argument("--depth", type=int, default=2)
    make_problem.add_argument("--branching", type=int, default=3)
    make_problem.add_argument("--frontends", type=int, default=4)
    make_problem.add_argument("--storage", type=int, default=12)
    make_problem.add_argument("--nodes", type=int, default=8)
    make_problem.add_argument("--dimension", type=int, default=3)
    make_problem.add_argument("--objective", default=Objective.LONGEST_LINK.value,
                              choices=[objective.value for objective in Objective])
    make_problem.add_argument("--metric", default=LatencyMetric.MEAN.value,
                              choices=[metric.value for metric in LatencyMetric])
    make_problem.add_argument("--over-allocation", type=float, default=0.10,
                              help="fraction of extra instances to allocate")
    make_problem.add_argument("--out", required=True,
                              help="path of the problem JSON to write")
    make_problem.set_defaults(handler=command_make_problem)

    solve = subparsers.add_parser(
        "solve", help="solve a serialized DeploymentProblem JSON")
    solve.add_argument("--problem", required=True,
                       help="path of the problem JSON to solve")
    solve.add_argument("--solver", default="auto", choices=solver_choices())
    solve.add_argument("--seed", type=int, default=None, help="random seed")
    solve.add_argument("--time-limit", type=float, default=5.0,
                       help="solver time limit in seconds "
                            "(0 = solver default budget)")
    solve.add_argument("--solver-config", default=None,
                       help="extra solver config as a JSON object")
    solve.add_argument("--eval-workers", default=None,
                       help="evaluation parallelism for batch-scoring "
                            "solvers: 'auto', a positive integer, or "
                            "'procs[:N]' for shared-memory worker "
                            "processes (default: serial; results are "
                            "bit-identical either way)")
    solve.add_argument("--peek-block", type=int, default=None,
                       help="candidate moves batch-scored per local-search/"
                            "annealing pass (1 disables batching; default: "
                            "solver-specific; results are bit-identical at "
                            "any setting)")
    solve.add_argument("--out", default=None,
                       help="path of the response JSON to write")
    solve.set_defaults(handler=command_solve)

    solve_batch = subparsers.add_parser(
        "solve-batch",
        help="run a batch of serialized solve requests in one session")
    solve_batch.add_argument("--requests", default=None,
                             help="JSON file with a list of solve requests "
                                  "(or {'requests': [...]})")
    solve_batch.add_argument("--problem", action="append", default=None,
                             help="problem JSON to solve with the shared "
                                  "--solver/--seed (repeatable)")
    solve_batch.add_argument("--solver", default="auto",
                             choices=solver_choices())
    solve_batch.add_argument("--seed", type=int, default=None)
    solve_batch.add_argument("--time-limit", type=float, default=5.0,
                             help="solver time limit for requests built "
                                  "from --problem flags, in seconds "
                                  "(0 = solver default budget); --requests "
                                  "entries keep their own budgets")
    solve_batch.add_argument("--workers", type=int, default=None,
                             help="worker threads (default: sequential, "
                                  "which keeps wall-clock solver budgets "
                                  "reproducible)")
    solve_batch.add_argument("--eval-workers", default=None,
                             help="evaluation parallelism for batch-scoring "
                                  "solvers: 'auto', a positive integer, or "
                                  "'procs[:N]' for shared-memory worker "
                                  "processes (default: serial; results are "
                                  "bit-identical either way)")
    solve_batch.add_argument("--peek-block", type=int, default=None,
                             help="candidate moves batch-scored per "
                                  "local-search/annealing pass (1 disables "
                                  "batching; default: solver-specific; "
                                  "results are bit-identical at any "
                                  "setting)")
    solve_batch.add_argument("--out", default=None,
                             help="path of the responses JSON to write")
    solve_batch.set_defaults(handler=command_solve_batch)

    make_trace = subparsers.add_parser(
        "make-trace",
        help="generate a replayable trace of drifted cost windows")
    make_trace.add_argument("--problem", required=True,
                            help="problem JSON whose costs the trace drifts")
    make_trace.add_argument("--out", required=True,
                            help="path of the trace JSON to write")
    make_trace.add_argument("--windows", type=int, default=6,
                            help="number of measurement windows")
    make_trace.add_argument("--jitter", type=float, default=0.01,
                            help="per-link lognormal jitter sigma "
                                 "(relative measurement noise)")
    make_trace.add_argument("--spike-window", type=int, default=3,
                            help="window from which spiked links stay "
                                 "elevated (-1 disables spikes)")
    make_trace.add_argument("--spike-links", type=int, default=5,
                            help="number of links to spike")
    make_trace.add_argument("--spike-factor", type=float, default=2.5,
                            help="multiplicative latency shift on spiked links")
    make_trace.add_argument("--seed", type=int, default=0, help="random seed")
    make_trace.set_defaults(handler=command_make_trace)

    watch = subparsers.add_parser(
        "watch",
        help="replay a cost trace through the live re-deployment pipeline")
    watch.add_argument("--problem", required=True,
                       help="problem JSON the deployment was solved against")
    watch.add_argument("--trace", required=True,
                       help="trace JSON with a 'windows' list of cost matrices")
    watch.add_argument("--solver", default="auto", choices=solver_choices())
    watch.add_argument("--seed", type=int, default=None, help="random seed")
    watch.add_argument("--time-limit", type=float, default=5.0,
                       help="solver time limit per (re-)solve in seconds "
                            "(0 = solver default budget)")
    watch.add_argument("--drift-threshold", type=float, default=0.05,
                       help="re-solve when a window's largest per-link "
                            "relative drift reaches this fraction")
    watch.add_argument("--degradation-threshold", type=float, default=0.02,
                       help="re-solve when the incumbent plan's cost "
                            "degrades by this fraction")
    watch.add_argument("--cold", action="store_true",
                       help="disable warm-starting re-solves from the "
                            "incumbent plan")
    watch.add_argument("--cache-dir", default=None,
                       help="directory of the persistent JSON result cache "
                            "(shared across processes; default: no cache)")
    watch.add_argument("--store", default=None,
                       help="path of the durable SQLite result + history "
                            "store (WAL mode, shared across processes; "
                            "also records the re-deployment history; "
                            "alternative to --cache-dir)")
    watch.add_argument("--eval-workers", default=None,
                       help="evaluation parallelism for the watch "
                            "session's (re-)solves: 'auto', a positive "
                            "integer, or 'procs[:N]' for worker processes "
                            "(default: serial; results are bit-identical "
                            "either way)")
    watch.add_argument("--out", default=None,
                       help="path of the re-deployment log JSON to write")
    watch.set_defaults(handler=command_watch)

    solvers = subparsers.add_parser("solvers",
                                    help="list the registered solvers")
    solvers.add_argument("--json", action="store_true",
                         help="emit the machine-readable catalog (the "
                              "same payload as GET /v1/solvers)")
    solvers.set_defaults(handler=command_solvers)

    serve = subparsers.add_parser(
        "serve",
        help="run the multi-tenant HTTP advisor service")
    serve.add_argument("--host", default="127.0.0.1",
                       help="address to bind (default: loopback)")
    serve.add_argument("--port", type=int, default=8477,
                       help="TCP port to listen on")
    serve.add_argument("--store", default=None,
                       help="path of the shared durable SQLite result + "
                            "history store; omitting it serves without "
                            "persistence (history endpoints answer 503)")
    serve.add_argument("--workers", type=int, default=2,
                       help="solver worker threads draining the shared "
                            "priority queue")
    serve.add_argument("--queue-size", type=int, default=256,
                       help="bound on queued jobs; submissions beyond it "
                            "are rejected with HTTP 429")
    serve.add_argument("--request-timeout", type=float, default=30.0,
                       help="seconds a synchronous solve waits before "
                            "returning 504 (the job stays pollable)")
    serve.add_argument("--tenant-header", default="x-tenant",
                       help="HTTP header resolved into the tenant name")
    serve.add_argument("--tenant-weight", action="append", default=None,
                       metavar="TENANT=WEIGHT",
                       help="fair-share weight for one tenant "
                            "(repeatable; default weight is 1)")
    serve.add_argument("--eval-workers", default=None,
                       help="evaluation parallelism forwarded to the "
                            "advisor session ('auto', a positive int, or "
                            "'procs[:N]' for worker processes)")
    serve.add_argument("--verbose", action="store_true",
                       help="log each HTTP request to stderr")
    serve.set_defaults(handler=command_serve)

    measure = subparsers.add_parser("measure",
                                    help="measure pairwise latencies on a fresh allocation")
    add_common(measure)
    measure.add_argument("--instances", type=int, default=20)
    measure.set_defaults(handler=command_measure)

    providers = subparsers.add_parser("providers",
                                      help="compare latency heterogeneity across providers")
    providers.add_argument("--instances", type=int, default=30)
    providers.add_argument("--seed", type=int, default=0)
    providers.set_defaults(handler=command_providers)

    templates = subparsers.add_parser("templates",
                                      help="list communication graph templates")
    templates.set_defaults(handler=command_templates)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    try:
        return args.handler(args)
    except (ClouDiAError, ValueError, TypeError, OSError) as exc:
        # The library's own failures plus the boundary errors the JSON
        # commands can hit (malformed --solver-config, missing files,
        # mistyped config values) all exit cleanly instead of tracebacking.
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
