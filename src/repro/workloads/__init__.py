"""Latency-sensitive application workloads used in the paper's evaluation."""

from .aggregation_query import AggregationQueryWorkload
from .base import Workload, WorkloadResult, summarise_response_times
from .behavioral_simulation import BehavioralSimulationWorkload
from .key_value_store import KeyValueStoreWorkload
from .runtime import DeploymentComparison, compare_deployments, evaluate_deployment

__all__ = [
    "AggregationQueryWorkload",
    "BehavioralSimulationWorkload",
    "DeploymentComparison",
    "KeyValueStoreWorkload",
    "Workload",
    "WorkloadResult",
    "compare_deployments",
    "evaluate_deployment",
    "summarise_response_times",
]
