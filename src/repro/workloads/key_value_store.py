"""Distributed key-value store workload (Sect. 6.1.3).

Front-end servers fan out each query to a random subset of storage nodes
(keys are randomly partitioned) and wait for all of them to answer; the
query's response time is the slowest of the touched links.  Averaged over
queries, neither longest link nor longest path is the exactly-right
objective — the paper nevertheless optimises this workload with longest
link and still observes a 15–31 % improvement, which the reproduction's
Fig. 12 benchmark confirms qualitatively.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..core.communication_graph import CommunicationGraph
from ..core.deployment import DeploymentPlan
from ..core.objectives import Objective
from ..core.types import make_rng
from ..cloud.provider import SimulatedCloud
from .base import Workload, WorkloadResult, summarise_response_times


class KeyValueStoreWorkload(Workload):
    """Bipartite front-end / storage-node key-value store.

    Args:
        num_frontends: number of front-end (query routing) servers.
        num_storage: number of storage nodes holding the partitioned keys.
        num_queries: queries replayed per evaluation.
        keys_per_query: how many storage nodes a query touches (a multiget).
        message_bytes: per-request message size.
    """

    name = "key-value-store"
    objective = Objective.LONGEST_LINK
    metric = "mean_response_ms"

    def __init__(self, num_frontends: int = 20, num_storage: int = 80,
                 num_queries: int = 400, keys_per_query: int = 8,
                 message_bytes: int = 1024):
        if keys_per_query < 1:
            raise ValueError("keys_per_query must be >= 1")
        if keys_per_query > num_storage:
            raise ValueError("keys_per_query cannot exceed the number of storage nodes")
        self.num_frontends = num_frontends
        self.num_storage = num_storage
        self.num_queries = num_queries
        self.keys_per_query = keys_per_query
        self.message_bytes = message_bytes
        self._graph = CommunicationGraph.bipartite(num_frontends, num_storage)

    def communication_graph(self) -> CommunicationGraph:
        return self._graph

    def frontends(self) -> List[int]:
        """Front-end node identifiers."""
        return list(range(self.num_frontends))

    def storage_nodes(self) -> List[int]:
        """Storage node identifiers."""
        return list(range(self.num_frontends, self.num_frontends + self.num_storage))

    def evaluate(self, plan: DeploymentPlan, cloud: SimulatedCloud,
                 seed: int | None = None) -> WorkloadResult:
        self._check_plan(plan)
        sample = self._edge_latency_sampler(plan, cloud, seed)
        rng = make_rng(None if seed is None else seed + 1)
        storage = self.storage_nodes()
        frontends = self.frontends()

        response_times = np.empty(self.num_queries)
        for query in range(self.num_queries):
            frontend = frontends[int(rng.integers(len(frontends)))]
            touched = rng.choice(len(storage), size=self.keys_per_query, replace=False)
            # The query completes once the slowest storage node has answered.
            response_times[query] = max(
                sample(frontend, storage[int(index)]) for index in touched
            )

        details = summarise_response_times(response_times)
        details["queries"] = float(self.num_queries)
        details["keys_per_query"] = float(self.keys_per_query)
        return WorkloadResult(workload=self.name, metric=self.metric,
                              value=float(response_times.mean()), details=details)
