"""Running workloads under competing deployments and comparing them.

The headline experiments of the paper (Figs. 11–13) all have the same shape:
evaluate a workload under the *default* deployment (instances in provider
order) and under the ClouDiA-optimised deployment, and report the relative
reduction in time-to-solution or response time.  This module packages that
comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.deployment import DeploymentPlan
from ..cloud.provider import SimulatedCloud
from .base import Workload, WorkloadResult


@dataclass(frozen=True)
class DeploymentComparison:
    """Performance of a workload under a baseline and an optimised deployment."""

    workload: str
    metric: str
    baseline: WorkloadResult
    optimized: WorkloadResult

    @property
    def reduction(self) -> float:
        """Relative reduction of the metric, e.g. 0.30 for a 30 % improvement.

        Negative values mean the "optimised" deployment was actually worse.
        """
        if self.baseline.value <= 0:
            return 0.0
        return (self.baseline.value - self.optimized.value) / self.baseline.value

    @property
    def reduction_percent(self) -> float:
        """Reduction expressed in percent."""
        return 100.0 * self.reduction


def evaluate_deployment(workload: Workload, plan: DeploymentPlan,
                        cloud: SimulatedCloud,
                        seed: int | None = None) -> WorkloadResult:
    """Run ``workload`` once under ``plan`` and return its performance."""
    return workload.evaluate(plan, cloud, seed=seed)


def compare_deployments(workload: Workload, baseline_plan: DeploymentPlan,
                        optimized_plan: DeploymentPlan, cloud: SimulatedCloud,
                        seed: int | None = None,
                        repetitions: int = 1) -> DeploymentComparison:
    """Evaluate two deployments of the same workload under identical traffic.

    Args:
        workload: the application to replay.
        baseline_plan: typically the default (provider-order) deployment.
        optimized_plan: typically ClouDiA's plan.
        cloud: the simulated cloud both plans run on.
        seed: base seed; both plans see the same sequence of seeds so the
            comparison is paired.
        repetitions: number of paired runs to average, reducing run-to-run
            jitter in the reported reduction.
    """
    if repetitions < 1:
        raise ValueError("repetitions must be >= 1")

    baseline_total = 0.0
    optimized_total = 0.0
    last_baseline: Optional[WorkloadResult] = None
    last_optimized: Optional[WorkloadResult] = None
    for repetition in range(repetitions):
        run_seed = None if seed is None else seed + repetition
        last_baseline = workload.evaluate(baseline_plan, cloud, seed=run_seed)
        last_optimized = workload.evaluate(optimized_plan, cloud, seed=run_seed)
        baseline_total += last_baseline.value
        optimized_total += last_optimized.value

    assert last_baseline is not None and last_optimized is not None
    baseline = WorkloadResult(workload=workload.name, metric=workload.metric,
                              value=baseline_total / repetitions,
                              details=last_baseline.details)
    optimized = WorkloadResult(workload=workload.name, metric=workload.metric,
                               value=optimized_total / repetitions,
                               details=last_optimized.details)
    return DeploymentComparison(workload=workload.name, metric=workload.metric,
                                baseline=baseline, optimized=optimized)
