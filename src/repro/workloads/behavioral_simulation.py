"""Behavioral simulation workload (Sect. 6.1.1): a BSP fish school.

The simulation partitions space over a 2-D mesh of nodes.  Every tick, each
node exchanges boundary data with its mesh neighbors and then waits at a
barrier; the tick therefore lasts as long as the slowest neighbor exchange
(plus local compute).  Summed over many ticks, time-to-solution is dominated
by the worst link of the deployment — the longest-link objective.
"""

from __future__ import annotations

import numpy as np

from ..core.communication_graph import CommunicationGraph
from ..core.deployment import DeploymentPlan
from ..core.objectives import Objective
from ..cloud.provider import SimulatedCloud
from .base import Workload, WorkloadResult, summarise_response_times


class BehavioralSimulationWorkload(Workload):
    """Tick-synchronised 2-D mesh simulation (Couzin-style fish school).

    Args:
        rows, cols: mesh dimensions; the paper's 100-node runs use a 10x10
            mesh.
        ticks: number of simulation ticks to replay.  The paper runs 100 K
            ticks; the default here is smaller so examples finish quickly,
            and time-to-solution simply scales linearly with it.
        compute_ms_per_tick: CPU time per tick, hidden in the paper's
            network-focused experiments (default 0).
        message_bytes: boundary exchange size per link per tick (1 KB).
    """

    name = "behavioral-simulation"
    objective = Objective.LONGEST_LINK
    metric = "time_to_solution_ms"

    def __init__(self, rows: int = 10, cols: int = 10, ticks: int = 200,
                 compute_ms_per_tick: float = 0.0, message_bytes: int = 1024):
        if ticks < 1:
            raise ValueError("ticks must be >= 1")
        self.rows = rows
        self.cols = cols
        self.ticks = ticks
        self.compute_ms_per_tick = compute_ms_per_tick
        self.message_bytes = message_bytes
        self._graph = CommunicationGraph.mesh_2d(rows, cols)

    def communication_graph(self) -> CommunicationGraph:
        return self._graph

    def evaluate(self, plan: DeploymentPlan, cloud: SimulatedCloud,
                 seed: int | None = None) -> WorkloadResult:
        self._check_plan(plan)
        sample = self._edge_latency_sampler(plan, cloud, seed)
        edges = self._graph.edges

        tick_times = np.empty(self.ticks)
        for tick in range(self.ticks):
            # The barrier at the end of the tick completes when the slowest
            # neighbor exchange completes.
            slowest_exchange = max(sample(i, j) for i, j in edges)
            tick_times[tick] = slowest_exchange + self.compute_ms_per_tick

        total = float(tick_times.sum())
        details = summarise_response_times(tick_times)
        details["mean_tick_ms"] = float(tick_times.mean())
        details["ticks"] = float(self.ticks)
        return WorkloadResult(workload=self.name, metric=self.metric,
                              value=total, details=details)
