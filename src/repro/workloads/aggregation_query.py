"""Synthetic aggregation query workload (Sect. 6.1.2): a top-k search tree.

Queries are answered by leaf nodes in parallel; partial aggregates flow up a
multi-level aggregation tree towards the root.  The response time of a query
is governed by the leaf-to-root path with the highest total latency — the
longest-path objective.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..core.communication_graph import CommunicationGraph
from ..core.deployment import DeploymentPlan
from ..core.objectives import Objective
from ..cloud.provider import SimulatedCloud
from .base import Workload, WorkloadResult, summarise_response_times


class AggregationQueryWorkload(Workload):
    """Multi-level top-k aggregation over a complete tree.

    Args:
        branching: fan-in of every internal node.
        depth: number of levels below the root; the paper's 50-node runs use
            trees of depth at most 4.
        num_queries: how many queries to replay when evaluating a deployment.
        compute_ms_per_hop: per-node ranking / merging cost added at every
            aggregation step (hidden in the paper's experiments).
        message_bytes: average partial-aggregate size (4 KB in the paper).
    """

    name = "aggregation-query"
    objective = Objective.LONGEST_PATH
    metric = "mean_response_ms"

    def __init__(self, branching: int = 3, depth: int = 3, num_queries: int = 200,
                 compute_ms_per_hop: float = 0.0, message_bytes: int = 4096):
        if num_queries < 1:
            raise ValueError("num_queries must be >= 1")
        self.branching = branching
        self.depth = depth
        self.num_queries = num_queries
        self.compute_ms_per_hop = compute_ms_per_hop
        self.message_bytes = message_bytes
        self._graph = CommunicationGraph.aggregation_tree(branching, depth,
                                                          leaves_to_root=True)
        self._topological_order = self._graph.topological_order()

    def communication_graph(self) -> CommunicationGraph:
        return self._graph

    @property
    def num_nodes(self) -> int:
        """Total number of tree nodes (root, internal nodes and leaves)."""
        return self._graph.num_nodes

    def evaluate(self, plan: DeploymentPlan, cloud: SimulatedCloud,
                 seed: int | None = None) -> WorkloadResult:
        self._check_plan(plan)
        sample = self._edge_latency_sampler(plan, cloud, seed)
        graph = self._graph

        response_times = np.empty(self.num_queries)
        for query in range(self.num_queries):
            # Longest-path dynamic program with freshly sampled edge
            # latencies: arrival[i] is when node i has received every child's
            # partial aggregate and finished its own merge.
            arrival: Dict[int, float] = {n: 0.0 for n in graph.nodes}
            for node in self._topological_order:
                for parent in graph.successors(node):
                    transfer = sample(node, parent) + self.compute_ms_per_hop
                    arrival[parent] = max(arrival[parent], arrival[node] + transfer)
            response_times[query] = max(arrival.values())

        details = summarise_response_times(response_times)
        details["queries"] = float(self.num_queries)
        return WorkloadResult(workload=self.name, metric=self.metric,
                              value=float(response_times.mean()), details=details)

    def leaves(self) -> List[int]:
        """Leaf nodes of the aggregation tree (the query executors)."""
        return [n for n in self._graph.nodes if self._graph.in_degree(n) == 0]
