"""Workload interface: how applications experience a deployment.

The paper evaluates ClouDiA on three applications (Sect. 6.1).  In this
reproduction each application is an *execution-model simulator*: given a
deployment plan and the simulated cloud, it replays the application's
communication pattern, sampling per-message latencies from the cloud, and
reports the performance metric the paper reports (time-to-solution for the
behavioral simulation, response time for the aggregation query and the
key-value store).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from ..core.communication_graph import CommunicationGraph
from ..core.deployment import DeploymentPlan
from ..core.errors import InvalidDeploymentError
from ..core.objectives import Objective
from ..core.types import make_rng
from ..cloud.provider import SimulatedCloud


@dataclass(frozen=True)
class WorkloadResult:
    """Performance of one workload run under one deployment.

    Attributes:
        workload: workload name.
        metric: name of the performance metric (``time_to_solution_ms`` or
            ``mean_response_ms``).
        value: metric value in milliseconds; lower is better.
        details: auxiliary statistics (percentiles, per-phase breakdowns).
    """

    workload: str
    metric: str
    value: float
    details: Dict[str, float] = field(default_factory=dict)


class Workload(abc.ABC):
    """A latency-sensitive distributed application."""

    #: Workload name used in results and benchmark output.
    name: str = "workload"

    #: The deployment cost objective that models this workload best.
    objective: Objective = Objective.LONGEST_LINK

    #: Performance metric reported by :meth:`evaluate`.
    metric: str = "time_to_solution_ms"

    #: Message size the application exchanges, used for latency sampling.
    message_bytes: int = 1024

    @abc.abstractmethod
    def communication_graph(self) -> CommunicationGraph:
        """The application's ``talks`` graph (what ClouDiA optimises over)."""

    @abc.abstractmethod
    def evaluate(self, plan: DeploymentPlan, cloud: SimulatedCloud,
                 seed: int | None = None) -> WorkloadResult:
        """Replay the application under ``plan`` and report its performance."""

    # ------------------------------------------------------------------ #
    # Shared helpers
    # ------------------------------------------------------------------ #

    def _check_plan(self, plan: DeploymentPlan) -> None:
        graph = self.communication_graph()
        if not plan.covers(graph):
            raise InvalidDeploymentError(
                f"deployment plan does not cover all {graph.num_nodes} nodes "
                f"of workload {self.name!r}"
            )

    def _edge_latency_sampler(self, plan: DeploymentPlan, cloud: SimulatedCloud,
                              seed: int | None):
        """Return ``sample(i, j)`` drawing one message latency for edge (i, j)."""
        rng = make_rng(seed)

        def sample(node_i: int, node_j: int) -> float:
            return cloud.sample_rtt(
                plan.instance_for(node_i), plan.instance_for(node_j),
                message_bytes=self.message_bytes, rng=rng,
            )

        return sample


def summarise_response_times(values: np.ndarray) -> Dict[str, float]:
    """Common response-time summary statistics attached to workload results."""
    return {
        "p50_ms": float(np.percentile(values, 50)),
        "p90_ms": float(np.percentile(values, 90)),
        "p99_ms": float(np.percentile(values, 99)),
        "max_ms": float(values.max()),
        "min_ms": float(values.min()),
    }
