"""ClouDiA: a deployment advisor for public clouds — reproduction library.

This package reproduces the system described in "ClouDiA: a deployment
advisor for public clouds" (Zou, Le Bras, Vaz Salles, Demers, Gehrke; VLDB
2012 / VLDB Journal 2015) as a pure-Python library:

* :mod:`repro.core` — communication graphs, cost matrices, deployment plans,
  the two deployment objectives, and the :class:`ClouDiA` advisor pipeline;
* :mod:`repro.solvers` — CP, MIP, greedy, randomized and local-search
  deployment solvers;
* :mod:`repro.cloud` — a simulated public cloud (EC2 / GCE / Rackspace
  latency profiles) standing in for the paper's real allocations;
* :mod:`repro.netmeasure` — the token-passing, uncoordinated and staged
  pairwise latency measurement schemes plus the IP-distance / hop-count
  approximations;
* :mod:`repro.workloads` — the behavioral simulation, aggregation query and
  key-value store applications used in the evaluation;
* :mod:`repro.analysis` — CDFs, statistics and reporting helpers used by the
  benchmark harness.
"""

from .core import (
    CommunicationGraph,
    CostMatrix,
    DeploymentPlan,
    DeploymentProblem,
    LatencyMetric,
    Objective,
    PlacementConstraints,
    deployment_cost,
    longest_link_cost,
    longest_path_cost,
)
from .core.advisor import AdvisorConfig, AdvisorReport, ClouDiA, MeasurementConfig
from .api import (
    AdvisorSession,
    ResultCache,
    SessionStats,
    SolveRequest,
    SolverResponse,
    SolveTelemetry,
    WatchPolicy,
    WatchReport,
)
from .cloud import DatacenterTopology, ProviderProfile, SimulatedCloud
from .netmeasure import (
    CostRevision,
    MeasurementStream,
    StagedMeasurement,
    TokenPassingMeasurement,
    UncoordinatedMeasurement,
)
from .solvers import (
    CPLongestLinkSolver,
    GreedyG1,
    GreedyG2,
    MIPLongestLinkSolver,
    MIPLongestPathSolver,
    PortfolioSolver,
    RandomSearch,
    SearchBudget,
    SolverRegistry,
    default_plan,
    default_registry,
)
from .workloads import (
    AggregationQueryWorkload,
    BehavioralSimulationWorkload,
    KeyValueStoreWorkload,
    compare_deployments,
)

__version__ = "0.3.0"

__all__ = [
    "AdvisorConfig",
    "AdvisorReport",
    "AdvisorSession",
    "AggregationQueryWorkload",
    "BehavioralSimulationWorkload",
    "CPLongestLinkSolver",
    "ClouDiA",
    "CommunicationGraph",
    "CostMatrix",
    "CostRevision",
    "DatacenterTopology",
    "DeploymentPlan",
    "DeploymentProblem",
    "GreedyG1",
    "GreedyG2",
    "KeyValueStoreWorkload",
    "LatencyMetric",
    "MIPLongestLinkSolver",
    "MIPLongestPathSolver",
    "MeasurementConfig",
    "MeasurementStream",
    "Objective",
    "PlacementConstraints",
    "PortfolioSolver",
    "ProviderProfile",
    "RandomSearch",
    "ResultCache",
    "SearchBudget",
    "SessionStats",
    "SimulatedCloud",
    "SolveRequest",
    "SolveTelemetry",
    "SolverRegistry",
    "SolverResponse",
    "StagedMeasurement",
    "TokenPassingMeasurement",
    "UncoordinatedMeasurement",
    "WatchPolicy",
    "WatchReport",
    "compare_deployments",
    "default_plan",
    "default_registry",
    "deployment_cost",
    "longest_link_cost",
    "longest_path_cost",
    "__version__",
]
