"""Deployment plans: injective mappings of application nodes to instances.

Definition 2 of the paper: a deployment plan ``D : N -> S`` maps each
application node to a distinct cloud instance.  Instances left unmapped can
be terminated (this is what makes over-allocation useful).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

import numpy as np

from .communication_graph import CommunicationGraph
from .errors import InvalidDeploymentError
from .types import InstanceId, NodeId, make_rng


class DeploymentPlan:
    """Injective mapping from application nodes to allocated instances."""

    def __init__(self, mapping: Mapping[NodeId, InstanceId]):
        items = dict(mapping)
        if not items:
            raise InvalidDeploymentError("deployment plan cannot be empty")
        instances = list(items.values())
        if len(instances) != len(set(instances)):
            raise InvalidDeploymentError(
                "deployment plan must be injective: two nodes share an instance"
            )
        self._mapping: Dict[NodeId, InstanceId] = items
        self._inverse: Dict[InstanceId, NodeId] = {v: k for k, v in items.items()}

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def identity(cls, nodes: Sequence[NodeId],
                 instances: Sequence[InstanceId]) -> "DeploymentPlan":
        """Map the ``k``-th node onto the ``k``-th instance.

        This is the *default deployment* the paper compares against: the
        tenant simply uses instances in the order the cloud returned them.
        """
        nodes = list(nodes)
        instances = list(instances)
        if len(instances) < len(nodes):
            raise InvalidDeploymentError(
                f"need at least {len(nodes)} instances, got {len(instances)}"
            )
        return cls(dict(zip(nodes, instances)))

    @classmethod
    def random(cls, nodes: Sequence[NodeId], instances: Sequence[InstanceId],
               rng: np.random.Generator | int | None = None) -> "DeploymentPlan":
        """Uniformly random injective mapping (used by R1/R2 and as warm start)."""
        nodes = list(nodes)
        instances = list(instances)
        if len(instances) < len(nodes):
            raise InvalidDeploymentError(
                f"need at least {len(nodes)} instances, got {len(instances)}"
            )
        generator = make_rng(rng)
        chosen = generator.choice(len(instances), size=len(nodes), replace=False)
        return cls({node: instances[idx] for node, idx in zip(nodes, chosen)})

    @classmethod
    def from_permutation(cls, nodes: Sequence[NodeId],
                         instances: Sequence[InstanceId],
                         permutation: Sequence[int]) -> "DeploymentPlan":
        """Build a plan from a permutation of instance indices."""
        nodes = list(nodes)
        instances = list(instances)
        if len(permutation) != len(nodes):
            raise InvalidDeploymentError("permutation length must match node count")
        return cls({node: instances[p] for node, p in zip(nodes, permutation)})

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #

    @property
    def nodes(self) -> Tuple[NodeId, ...]:
        """Application nodes covered by the plan."""
        return tuple(self._mapping.keys())

    @property
    def num_nodes(self) -> int:
        """Number of mapped application nodes."""
        return len(self._mapping)

    def instance_for(self, node: NodeId) -> InstanceId:
        """The instance hosting ``node``."""
        try:
            return self._mapping[node]
        except KeyError as exc:
            raise InvalidDeploymentError(f"node {node} is not mapped") from exc

    def node_for(self, instance: InstanceId) -> NodeId | None:
        """The node hosted on ``instance``, or ``None`` if the instance is unused."""
        return self._inverse.get(instance)

    def instances_for(self, nodes: Sequence[NodeId]) -> List[InstanceId]:
        """The instances hosting ``nodes``, in the given order.

        Bulk counterpart of :meth:`instance_for`; the evaluation engine uses
        it to lower whole plans without a Python-level call per node.
        """
        mapping = self._mapping
        try:
            return [mapping[node] for node in nodes]
        except KeyError as exc:
            raise InvalidDeploymentError(f"node {exc.args[0]} is not mapped") from exc

    def used_instances(self) -> Tuple[InstanceId, ...]:
        """Instances that host an application node."""
        return tuple(self._mapping.values())

    def unused_instances(self, all_instances: Iterable[InstanceId]) -> List[InstanceId]:
        """Instances from ``all_instances`` that the plan leaves idle.

        These are the over-allocated instances ClouDiA terminates in the
        final step of its architecture (Fig. 3).
        """
        used = set(self._mapping.values())
        return [i for i in all_instances if i not in used]

    def as_dict(self) -> Dict[NodeId, InstanceId]:
        """Plain ``dict`` copy of the mapping."""
        return dict(self._mapping)

    def covers(self, graph: CommunicationGraph) -> bool:
        """Return ``True`` if every node of ``graph`` is mapped."""
        return all(node in self._mapping for node in graph.nodes)

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #

    def to_dict(self) -> Dict[str, List]:
        """JSON-serializable representation.

        The mapping is emitted as a list of ``[node, instance]`` pairs (JSON
        objects cannot have integer keys) in insertion order.
        """
        return {
            "assignments": [[node, instance]
                            for node, instance in self._mapping.items()],
        }

    @classmethod
    def from_dict(cls, payload) -> "DeploymentPlan":
        """Rebuild a plan from :meth:`to_dict` output."""
        try:
            assignments = payload["assignments"]
        except (KeyError, TypeError) as exc:
            raise InvalidDeploymentError(
                "deployment plan payload must contain 'assignments'"
            ) from exc
        return cls({node: instance for node, instance in assignments})

    # ------------------------------------------------------------------ #
    # Derived plans
    # ------------------------------------------------------------------ #

    def with_swap(self, node_a: NodeId, node_b: NodeId) -> "DeploymentPlan":
        """Return a copy with the instances of two nodes exchanged.

        Swaps preserve injectivity, which makes them the natural move for
        local-search extensions.
        """
        mapping = dict(self._mapping)
        mapping[node_a], mapping[node_b] = mapping[node_b], mapping[node_a]
        return DeploymentPlan(mapping)

    def with_relocation(self, node: NodeId, instance: InstanceId) -> "DeploymentPlan":
        """Return a copy with ``node`` moved to a currently unused ``instance``."""
        if instance in self._inverse and self._inverse[instance] != node:
            raise InvalidDeploymentError(
                f"instance {instance} already hosts node {self._inverse[instance]}"
            )
        mapping = dict(self._mapping)
        mapping[node] = instance
        return DeploymentPlan(mapping)

    def restricted_to(self, nodes: Iterable[NodeId]) -> "DeploymentPlan":
        """Return the plan restricted to a subset of nodes."""
        return DeploymentPlan({n: self._mapping[n] for n in nodes})

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DeploymentPlan):
            return NotImplemented
        return self._mapping == other._mapping

    def __hash__(self) -> int:
        return hash(frozenset(self._mapping.items()))

    def __repr__(self) -> str:
        return f"DeploymentPlan(nodes={self.num_nodes})"


def provider_order_plan(nodes: Sequence[NodeId],
                        instance_ids: Sequence[InstanceId]) -> DeploymentPlan:
    """The *default deployment*: nodes mapped to instances in provider order.

    This is the baseline every experiment in Sect. 6.4 compares against —
    the tenant simply uses instances in the order the cloud returned them.
    Single definition shared by :func:`repro.solvers.base.default_plan` and
    :meth:`repro.core.problem.DeploymentProblem.default_plan`.
    """
    nodes = list(nodes)
    return DeploymentPlan.identity(nodes, list(instance_ids)[: len(nodes)])
