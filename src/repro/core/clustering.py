"""Optimal one-dimensional k-means used to cluster link costs (Sect. 6.3).

The paper reduces the number of distinct cost values seen by the CP solver
by clustering link costs with k-means.  Because the costs are scalar, the
clustering can be solved exactly with dynamic programming: optimal clusters
of sorted values are contiguous ranges, so the problem decomposes over a
prefix structure.  The implementation below is the textbook
O(k * n^2) dynamic program with prefix sums, which is more than fast enough
for the few hundred distinct values produced by rounding latencies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from .errors import ClouDiAError


@dataclass(frozen=True)
class ClusteringResult:
    """Result of clustering scalar values into ``k`` groups.

    Attributes:
        centers: cluster means, sorted ascending.
        labels: for each input value (in the original order), the index of
            the cluster it belongs to.
        cost: total within-cluster sum of squared deviations.
    """

    centers: np.ndarray
    labels: np.ndarray
    cost: float

    @property
    def num_clusters(self) -> int:
        """Number of clusters actually produced."""
        return int(len(self.centers))

    def mapped_values(self) -> np.ndarray:
        """Each input value replaced by the mean of its cluster."""
        return self.centers[self.labels]


def kmeans_1d(values: Sequence[float], k: int) -> ClusteringResult:
    """Cluster scalar ``values`` into at most ``k`` groups, exactly.

    Args:
        values: the scalar observations (any order, duplicates allowed).
        k: the maximum number of clusters.  If there are fewer distinct
            values than ``k``, one cluster per distinct value is returned.

    Returns:
        A :class:`ClusteringResult` with cluster means and per-value labels.

    Raises:
        ClouDiAError: if ``values`` is empty or ``k`` is not positive.
    """
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        raise ClouDiAError("cannot cluster an empty collection of values")
    if k <= 0:
        raise ClouDiAError("number of clusters must be positive")

    distinct = np.unique(data)
    n = distinct.size
    k_eff = min(k, n)

    if k_eff == n:
        centers = distinct
        labels = np.searchsorted(distinct, data)
        return ClusteringResult(centers=centers, labels=labels, cost=0.0)

    # Prefix sums over the sorted distinct values weighted by multiplicity.
    counts = np.array([np.count_nonzero(data == v) for v in distinct], dtype=float)
    prefix_count = np.concatenate(([0.0], np.cumsum(counts)))
    prefix_sum = np.concatenate(([0.0], np.cumsum(counts * distinct)))
    prefix_sq = np.concatenate(([0.0], np.cumsum(counts * distinct ** 2)))

    def segment_cost(lo: int, hi: int) -> float:
        """Within-cluster SSE of distinct values with indices [lo, hi)."""
        cnt = prefix_count[hi] - prefix_count[lo]
        total = prefix_sum[hi] - prefix_sum[lo]
        total_sq = prefix_sq[hi] - prefix_sq[lo]
        return float(total_sq - (total * total) / cnt)

    # dp[c][i]: best cost of splitting the first i distinct values into c clusters.
    inf = float("inf")
    dp = np.full((k_eff + 1, n + 1), inf)
    split = np.zeros((k_eff + 1, n + 1), dtype=int)
    dp[0][0] = 0.0
    for c in range(1, k_eff + 1):
        for i in range(c, n + 1):
            best, best_j = inf, c - 1
            for j in range(c - 1, i):
                candidate = dp[c - 1][j] + segment_cost(j, i)
                if candidate < best:
                    best, best_j = candidate, j
            dp[c][i] = best
            split[c][i] = best_j

    # Recover segment boundaries.
    boundaries: List[int] = [n]
    i = n
    for c in range(k_eff, 0, -1):
        i = split[c][i]
        boundaries.append(i)
    boundaries.reverse()

    centers = np.empty(k_eff)
    distinct_labels = np.empty(n, dtype=int)
    for c in range(k_eff):
        lo, hi = boundaries[c], boundaries[c + 1]
        cnt = prefix_count[hi] - prefix_count[lo]
        centers[c] = (prefix_sum[hi] - prefix_sum[lo]) / cnt
        distinct_labels[lo:hi] = c

    labels = distinct_labels[np.searchsorted(distinct, data)]
    return ClusteringResult(centers=centers, labels=labels, cost=float(dp[k_eff][n]))


def cluster_costs(values: Sequence[float], k: int | None,
                  round_to: float | None = None) -> np.ndarray:
    """Replace each value by its cluster mean (helper for cost matrices).

    Args:
        values: scalar link costs.
        k: number of clusters; ``None`` disables clustering and returns the
            (optionally rounded) values unchanged.
        round_to: optional rounding grid applied before clustering.  The
            paper rounds latencies to the nearest 0.01 ms before counting
            distinct values.

    Returns:
        A NumPy array with the same length as ``values``.
    """
    data = np.asarray(list(values), dtype=float)
    if round_to is not None and round_to > 0:
        data = np.round(data / round_to) * round_to
    if k is None:
        return data
    return kmeans_1d(data, k).mapped_values()
