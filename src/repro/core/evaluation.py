"""Vectorized deployment-plan evaluation engine.

The search-based solvers (greedy, random search, swap local search,
simulated annealing) spend essentially all of their time scoring candidate
deployment plans.  The reference implementation in
:mod:`repro.core.objectives` walks the communication graph edge by edge
through Python dictionaries, which is an O(|E|) interpreter-bound loop per
candidate — far too slow for the paper's 100+-instance experiments.

This module lowers a problem instance once into contiguous NumPy arrays and
then evaluates plans with a handful of vectorized operations:

* :class:`CompiledProblem` — the lowered instance: a dense ``(m, m)`` cost
  array, edge-endpoint index arrays, node/instance index maps, and (for the
  longest-path objective) the edges grouped by the topological *level* of
  their source node so the DAG relaxation runs as a short sequence of
  gather + segmented-max operations instead of a per-edge Python loop.
* :class:`IndexedPlan` — a plan as a flat ``assignment`` array mapping node
  index to instance index, convertible to and from
  :class:`~repro.core.deployment.DeploymentPlan`.
* Batch evaluation (:meth:`CompiledProblem.evaluate_batch`) — scores many
  candidate plans at once with a single 2-D fancy-indexed gather, which is
  what makes ``R1``-style random search cheap at paper scale.
* :class:`CompiledConstraints` — placement constraints lowered to a boolean
  node×instance *allowed mask* plus per-node allowed-index arrays, so the
  constraint-aware solvers draw candidates and moves from precomputed
  arrays instead of re-querying the id-keyed constraint dictionaries.
* :class:`DeltaEvaluator` — incremental scoring of swap / relocate moves.
  For the longest-link objective a move only changes the edges incident to
  the moved nodes, so a candidate is scored in O(degree) (with an O(|E|)
  vectorized fallback only when the current critical edge is itself
  touched).  The longest-path objective is scored through a sparse
  level-ordered re-relaxation: the per-node longest-path-ending-here maxima
  (and the in-edge realising each maximum) are cached, a move re-relaxes
  only the nodes its perturbation actually reaches, and everything
  downstream of a washed-out change is reused untouched — the full DAG is
  never re-relaxed unless the move genuinely re-routes it.
* :class:`ParallelEvaluator` — multi-core batch evaluation.  Chunks the
  rows of an assignment matrix across a shared thread pool; the batch
  kernels gather through ``np.take`` and combine with ufuncs, both of
  which release the GIL under NumPy, so threads scale on multi-core hosts
  while small batches fall back to the serial path untouched.

All evaluators return bit-identical costs to the pure-Python oracle in
:mod:`repro.core.objectives`: they gather the same float64 cost entries and
combine them with the same max / add operations, so solvers rewired onto
the engine reproduce their previous results seed for seed.  The oracle
stays in place as the reference implementation the tests compare against.
"""

from __future__ import annotations

import operator
import os
import threading
import weakref
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from itertools import chain
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .communication_graph import CommunicationGraph
from .cost_matrix import CostMatrix
from .deployment import DeploymentPlan
from .errors import (
    InfeasibleProblemError,
    InvalidDeploymentError,
    InvalidGraphError,
    SolverError,
)
from .objectives import Objective
from .types import InstanceId, NodeId, make_rng

#: Cap on the number of gathered edge costs held in memory at once while
#: batch-evaluating (rows are processed in chunks beyond this).  Kept small
#: enough that chunk temporaries stay cache/allocator-friendly: large fresh
#: allocations are dominated by page faults, not the gather itself.
_BATCH_GATHER_BUDGET = 262_144

#: Cap (in cells) on the nested-list mirror of the cost array kept for the
#: pure-Python incremental longest-path delta.  A 1024x1024 matrix of floats
#: is ~8 MiB as a list-of-lists; beyond that the delta falls back to
#: ``ndarray.item`` gathers instead of doubling the cost array's footprint.
_COST_ROWS_MAX_CELLS = 1 << 20


class _LevelGroup:
    """Edges of a DAG whose source nodes share the same topological level.

    Edges are sorted by destination node so a segmented
    ``np.maximum.reduceat`` can combine all relaxations into each
    destination in one call.
    """

    __slots__ = ("src", "dst", "starts", "unique_dst")

    def __init__(self, src: np.ndarray, dst: np.ndarray):
        order = np.argsort(dst, kind="stable")
        self.src = np.ascontiguousarray(src[order])
        self.dst = np.ascontiguousarray(dst[order])
        unique_dst, starts = np.unique(self.dst, return_index=True)
        self.unique_dst = unique_dst
        self.starts = starts


class _LpDeltaStructure:
    """Graph-side adjacency for the incremental longest-path delta.

    Everything here is plain Python (lists of ints and ``(neighbor, edge)``
    tuples): the delta's sparse re-relaxation touches a handful of nodes per
    move, where list indexing beats NumPy gathers by an order of magnitude.
    Depends only on the graph, so it survives :meth:`CompiledProblem.refresh_costs`.
    """

    __slots__ = ("levels", "order", "in_edges", "out_edges", "level_nodes",
                 "num_levels")

    def __init__(self, levels: List[int], order: List[int],
                 in_edges: List[List[Tuple[int, int]]],
                 out_edges: List[List[Tuple[int, int]]]):
        self.levels = levels
        self.order = order
        self.in_edges = in_edges
        self.out_edges = out_edges
        # Nodes bucketed by level, for the window-local peek's per-level
        # maxima (a level is rescanned only when its committed maximum
        # decreases).  Levels are contiguous 0..num_levels-1 by
        # construction: a node at level L has a predecessor at L-1.
        self.num_levels = (max(levels) + 1) if levels else 0
        level_nodes: List[List[int]] = [[] for _ in range(self.num_levels)]
        for v in order:
            level_nodes[levels[v]].append(v)
        self.level_nodes = level_nodes


class CompiledProblem:
    """A ``CommunicationGraph`` + ``CostMatrix`` lowered to index arrays.

    Instances are cheap to query but not free to build (O(|V| + |E| + m^2));
    use :func:`compile_problem` to share one compilation per (graph, costs)
    pair across solvers.
    """

    def __init__(self, graph: CommunicationGraph, costs: CostMatrix):
        self.graph = graph
        # Weakly referenced so the compile cache (whose values reach this
        # object) cannot keep its own weak key alive; everything the engine
        # evaluates with is copied into arrays below.
        self._costs_ref = weakref.ref(costs)
        self.node_ids: Tuple[NodeId, ...] = graph.nodes
        self.instance_ids: Tuple[InstanceId, ...] = costs.instance_ids
        self.node_index: Dict[NodeId, int] = {n: k for k, n in enumerate(self.node_ids)}
        self.instance_index: Dict[InstanceId, int] = {
            inst: k for k, inst in enumerate(self.instance_ids)
        }
        self.num_nodes = len(self.node_ids)
        self.num_instances = len(self.instance_ids)
        self.cost_array = np.ascontiguousarray(costs.as_array())

        # Sorted view of the instance ids for vectorized id -> index lookups;
        # the common identity layout (ids 0..m-1) short-circuits the lookup.
        ids_array = np.asarray(self.instance_ids, dtype=np.int64)
        self._instance_sort = np.argsort(ids_array, kind="stable")
        self._sorted_instance_ids = ids_array[self._instance_sort]
        self._ids_are_arange = bool(
            np.array_equal(ids_array, np.arange(self.num_instances))
        )
        # C-level bulk extractor of a plan mapping's instances in node order.
        self._plan_getter = (
            operator.itemgetter(*self.node_ids) if self.num_nodes > 1 else None
        )

        self.edge_src = np.fromiter(
            (self.node_index[i] for i, _ in graph.edges), dtype=np.intp,
            count=graph.num_edges,
        )
        self.edge_dst = np.fromiter(
            (self.node_index[j] for _, j in graph.edges), dtype=np.intp,
            count=graph.num_edges,
        )
        self.num_edges = graph.num_edges

        # Edge ids incident to each node (either endpoint), for delta scoring.
        incident: List[List[int]] = [[] for _ in range(self.num_nodes)]
        for e in range(self.num_edges):
            incident[self.edge_src[e]].append(e)
            d = self.edge_dst[e]
            if d != self.edge_src[e]:
                incident[d].append(e)
        self._incident: Tuple[np.ndarray, ...] = tuple(
            np.asarray(ids, dtype=np.intp) for ids in incident
        )

        self._levels: Optional[Tuple[_LevelGroup, ...]] = None
        self._node_level: Optional[np.ndarray] = None
        self._lp_struct: Optional[_LpDeltaStructure] = None
        self._incident_pad: Optional[np.ndarray] = None
        self._lp_reach_cache: Optional[np.ndarray] = None
        self._group_dst_max: Optional[np.ndarray] = None
        self._cost_rows_cache: Optional[List[List[float]]] = None
        self._degrees: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None
        self._profiles: Optional[np.ndarray] = None
        self._sorted_link_costs: Optional[Tuple[np.ndarray, np.ndarray]] = None
        self._assignment_lb: Optional[np.ndarray] = None
        self._cost_epoch = 0

    @property
    def costs(self) -> Optional[CostMatrix]:
        """The source cost matrix, or ``None`` once it has been collected.

        The engine never needs it after compilation (the dense array is
        copied); it is exposed for introspection only.
        """
        return self._costs_ref()

    @property
    def cost_epoch(self) -> int:
        """Monotonic counter bumped by every :meth:`refresh_costs`.

        :class:`DeltaEvaluator` records the epoch it was primed at and
        refuses to score moves after a refresh until it is explicitly
        re-primed, so stale incremental state can never leak across a cost
        revision.
        """
        return self._cost_epoch

    def refresh_costs(self, costs: CostMatrix) -> "CompiledProblem":
        """Swap in a revised cost matrix in place, keeping the lowering.

        The expensive graph-side lowering — node/instance index maps, edge
        endpoint arrays, incident-edge lists, topological level groups,
        degree profiles — depends only on the graph and the instance id
        layout, neither of which a cost revision changes.  Refreshing
        therefore replaces just the dense cost array and drops the
        cost-derived bound caches (sorted link costs, per-assignment lower
        bounds); everything else, including any
        :class:`CompiledConstraints` built against this problem, stays
        valid because the object identity and index space are unchanged.

        The process-wide compile cache is re-keyed from the old cost
        matrix to ``costs`` (when this compilation is cached), so
        :func:`compile_problem` with the revised matrix finds the
        refreshed engine while the old matrix honestly recompiles.

        Refreshing is a *single-writer* operation: each evaluation call
        reads one consistent cost array, but a solver interleaving many
        calls against this object while another thread refreshes it would
        mix pre- and post-revision scores.  The live pipeline's watch
        loop runs refreshes and re-solves sequentially for exactly this
        reason; do not refresh an engine a concurrent solve is using.

        Args:
            costs: revised matrix covering the same instances in the same
                order as the one this problem was compiled from.

        Returns:
            ``self``, refreshed in place.

        Raises:
            InvalidDeploymentError: if ``costs`` covers different
                instances (that requires a full recompile).
        """
        if costs.instance_ids != self.instance_ids:
            raise InvalidDeploymentError(
                "refresh_costs requires a matrix over the same instances "
                "in the same order; compile a new problem instead"
            )
        old_costs = self._costs_ref()
        if old_costs is costs:
            return self
        self.cost_array = np.ascontiguousarray(costs.as_array())
        self._costs_ref = weakref.ref(costs)
        self._sorted_link_costs = None
        self._assignment_lb = None
        self._cost_rows_cache = None
        self._cost_epoch += 1
        _COMPILE_CACHE.rehome(self, old_costs, costs)
        return self

    # ------------------------------------------------------------------ #
    # Index translation
    # ------------------------------------------------------------------ #

    def node_idx(self, node: NodeId) -> int:
        """Dense index of an application node."""
        return self.node_index[node]

    def instance_idx(self, instance: InstanceId) -> int:
        """Dense index of an instance identifier."""
        return self.instance_index[instance]

    def incident_edges(self, node_idx: int) -> np.ndarray:
        """Ids of the edges incident to a node (either direction)."""
        return self._incident[node_idx]

    def _instance_indices(self, instance_ids: np.ndarray) -> np.ndarray:
        """Vectorized instance id -> dense index translation (any shape)."""
        if self._ids_are_arange:
            if instance_ids.size and (
                instance_ids.min() < 0 or instance_ids.max() >= self.num_instances
            ):
                raise InvalidDeploymentError(
                    "plan maps a node to an instance outside the cost matrix"
                )
            return instance_ids.astype(np.intp)
        positions = np.searchsorted(self._sorted_instance_ids, instance_ids)
        positions = np.clip(positions, 0, self.num_instances - 1)
        if not np.array_equal(self._sorted_instance_ids[positions], instance_ids):
            raise InvalidDeploymentError(
                "plan maps a node to an instance outside the cost matrix"
            )
        return self._instance_sort[positions]

    def index_plan(self, plan: DeploymentPlan) -> np.ndarray:
        """Lower a plan to an ``(n,)`` array of instance indices per node index.

        Raises:
            InvalidDeploymentError: if the plan misses a node of the graph
                or maps one to an instance outside the cost matrix.
        """
        instances = np.asarray(plan.instances_for(self.node_ids), dtype=np.int64)
        return self._instance_indices(instances)

    def plan_from_assignment(self, assignment: np.ndarray) -> DeploymentPlan:
        """Rehydrate an index assignment into a :class:`DeploymentPlan`."""
        return DeploymentPlan({
            node: self.instance_ids[assignment[k]]
            for k, node in enumerate(self.node_ids)
        })

    # ------------------------------------------------------------------ #
    # Longest-path machinery (built lazily: only DAG problems need it)
    # ------------------------------------------------------------------ #

    def _node_levels(self) -> np.ndarray:
        """Topological level per node index (longest edge-count from a source).

        Raises:
            InvalidGraphError: if the graph is cyclic (the longest-path
                objective is undefined on cyclic graphs).
        """
        if self._node_level is None:
            if not self.graph.is_dag():
                raise InvalidGraphError(
                    "longest-path objective requires an acyclic graph"
                )
            level = np.zeros(self.num_nodes, dtype=np.intp)
            for node in self.graph.topological_order():
                i = self.node_index[node]
                for succ in self.graph.successors(node):
                    j = self.node_index[succ]
                    if level[i] + 1 > level[j]:
                        level[j] = level[i] + 1
            self._node_level = level
        return self._node_level

    def _level_groups(self) -> Tuple[_LevelGroup, ...]:
        if self._levels is None:
            level = self._node_levels()
            src_levels = level[self.edge_src]
            groups = []
            for lvl in np.unique(src_levels):
                sel = src_levels == lvl
                groups.append(_LevelGroup(self.edge_src[sel], self.edge_dst[sel]))
            self._levels = tuple(groups)
        return self._levels

    def _lp_delta_structure(self) -> _LpDeltaStructure:
        """Pure-Python adjacency used by the incremental longest-path delta.

        Built once per compilation (graph-only, survives
        :meth:`refresh_costs`): node levels, a level-sorted topological node
        order, and per-node in/out edge lists as ``(neighbor, edge)`` pairs.
        """
        if self._lp_struct is None:
            levels = self._node_levels().tolist()
            order = sorted(range(self.num_nodes), key=levels.__getitem__)
            in_edges: List[List[Tuple[int, int]]] = [
                [] for _ in range(self.num_nodes)
            ]
            out_edges: List[List[Tuple[int, int]]] = [
                [] for _ in range(self.num_nodes)
            ]
            src_list = self.edge_src.tolist()
            dst_list = self.edge_dst.tolist()
            for e in range(self.num_edges):
                u = src_list[e]
                w = dst_list[e]
                out_edges[u].append((w, e))
                in_edges[w].append((u, e))
            self._lp_struct = _LpDeltaStructure(levels, order, in_edges,
                                                out_edges)
        return self._lp_struct

    def _cost_rows(self) -> Optional[List[List[float]]]:
        """Nested-list mirror of the cost array for Python-loop gathers.

        Returns ``None`` for matrices beyond :data:`_COST_ROWS_MAX_CELLS`
        (callers fall back to ``cost_array.item``).  Dropped by
        :meth:`refresh_costs` alongside the other cost-derived caches.
        """
        if self._cost_rows_cache is None:
            if self.cost_array.size > _COST_ROWS_MAX_CELLS:
                return None
            self._cost_rows_cache = self.cost_array.tolist()
        return self._cost_rows_cache

    def _incident_padded(self) -> np.ndarray:
        """The per-node incident edge ids as one ``(n, W)`` array, -1 padded.

        ``W`` is the maximum incident degree (at least 1 so the array is
        never zero-width).  The batch move-scoring kernel gathers every
        candidate's touched edges through this matrix in one fancy index;
        -1 entries are masked out by the kernel.  Graph-side only, so it
        survives :meth:`refresh_costs`.
        """
        if self._incident_pad is None:
            width = max((ids.size for ids in self._incident), default=0)
            pad = np.full((self.num_nodes, max(width, 1)), -1, dtype=np.intp)
            for i, ids in enumerate(self._incident):
                pad[i, : ids.size] = ids
            self._incident_pad = pad
        return self._incident_pad

    def _lp_reach(self) -> np.ndarray:
        """Per-node propagation bound for the batched longest-path peek.

        ``reach[v]`` is the maximum topological level among ``v``'s direct
        successors (``v``'s own level for sinks): a change to ``v``'s
        longest-path value can only perturb nodes up to that level in the
        next relaxation step.  The batch kernel folds the reaches of every
        node it has actually changed into a running stop level, so the
        level sweep ends as soon as no pending change can climb higher.
        """
        if self._lp_reach_cache is None:
            levels = self._node_levels()
            reach = levels.copy()
            if self.num_edges:
                np.maximum.at(reach, self.edge_src, levels[self.edge_dst])
            self._lp_reach_cache = reach
        return self._lp_reach_cache

    def _group_max_dst_levels(self) -> np.ndarray:
        """Max destination level per :meth:`_level_groups` group.

        Lets the batched longest-path peek skip level groups whose every
        destination sits below the batch's recomputation window.
        """
        if self._group_dst_max is None:
            levels = self._node_levels()
            self._group_dst_max = np.asarray(
                [int(levels[group.unique_dst].max())
                 for group in self._level_groups()],
                dtype=np.intp,
            )
        return self._group_dst_max

    # ------------------------------------------------------------------ #
    # Bound helpers for the exact solvers (CP labeling, MIP bounding)
    # ------------------------------------------------------------------ #

    def node_degrees(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-node ``(out, in, undirected)`` degree arrays in node-index order.

        The undirected degree counts distinct neighbours (an edge present in
        both directions contributes one neighbour), matching
        :meth:`CommunicationGraph.degree`.
        """
        if self._degrees is None:
            out_deg = np.bincount(self.edge_src, minlength=self.num_nodes)
            in_deg = np.bincount(self.edge_dst, minlength=self.num_nodes)
            undirected = np.fromiter(
                (self.graph.degree(node) for node in self.node_ids),
                dtype=np.int64, count=self.num_nodes,
            )
            self._degrees = (
                out_deg.astype(np.int64), in_deg.astype(np.int64), undirected
            )
        return self._degrees

    def neighbor_degree_profiles(self) -> np.ndarray:
        """Descending sorted neighbour degrees per node, padded with ``-inf``.

        Row ``i`` lists the undirected degrees of node ``i``'s neighbours in
        descending order; entries beyond the node's degree are ``-inf`` so a
        padded element never constrains a domination check.
        """
        if self._profiles is None:
            _, _, undirected = self.node_degrees()
            width = int(undirected.max()) if self.num_nodes else 0
            profiles = np.full((self.num_nodes, max(width, 1)), -np.inf)
            for i, node in enumerate(self.node_ids):
                neighbor_degrees = sorted(
                    (self.graph.degree(m) for m in self.graph.neighbors(node)),
                    reverse=True,
                )
                profiles[i, : len(neighbor_degrees)] = neighbor_degrees
            self._profiles = profiles
        return self._profiles

    def sorted_link_costs(self) -> Tuple[np.ndarray, np.ndarray]:
        """Ascending off-diagonal link costs per instance: ``(outgoing, incoming)``.

        Row ``s`` of the first array holds the ``m - 1`` outgoing link costs
        of instance ``s`` sorted ascending (the diagonal self-link excluded);
        the second array does the same for incoming links.  These are the
        order statistics behind the per-assignment cost lower bounds: an
        instance hosting a node with ``k`` out-edges must use ``k`` distinct
        outgoing links, so it pays at least the ``k``-th cheapest one.
        """
        if self._sorted_link_costs is None:
            m = self.num_instances
            off_diagonal = ~np.eye(m, dtype=bool)
            outgoing = np.sort(
                self.cost_array[off_diagonal].reshape(m, m - 1), axis=1
            )
            incoming = np.sort(
                self.cost_array.T[off_diagonal].reshape(m, m - 1), axis=1
            )
            self._sorted_link_costs = (outgoing, incoming)
        return self._sorted_link_costs

    def assignment_cost_lower_bounds(self) -> np.ndarray:
        """``(n, m)`` lower bounds on the longest-link cost per assignment.

        Entry ``[i, s]`` bounds from below the longest-link cost of *any*
        deployment that places node ``i`` on instance ``s``: the node's
        ``out_degree(i)`` out-edges must map to distinct outgoing links of
        ``s``, so the most expensive one costs at least the
        ``out_degree(i)``-th cheapest outgoing link of ``s`` (and dually for
        in-edges).  Nodes without edges get a bound of 0.0.
        """
        if self._assignment_lb is None:
            out_deg, in_deg, _ = self.node_degrees()
            outgoing, incoming = self.sorted_link_costs()
            lb = np.zeros((self.num_nodes, self.num_instances))
            has_out = out_deg > 0
            has_in = in_deg > 0
            if has_out.any():
                # kth cheapest outgoing cost, gathered per (node, instance).
                lb[has_out] = outgoing[:, out_deg[has_out] - 1].T
            if has_in.any():
                lb[has_in] = np.maximum(
                    lb[has_in], incoming[:, in_deg[has_in] - 1].T
                )
            self._assignment_lb = lb
        return self._assignment_lb

    def longest_link_lower_bound(self,
                                 allowed_mask: Optional[np.ndarray] = None
                                 ) -> float:
        """A proven lower bound on the optimal longest-link deployment cost.

        Every node must be placed somewhere, so the optimum is at least
        ``max_i min_s lb[i, s]`` over the per-assignment bounds.  The CP
        solver stops lowering its threshold once the incumbent reaches this
        value (no cheaper deployment can exist).

        Args:
            allowed_mask: optional ``(n, m)`` boolean placement mask (see
                :class:`CompiledConstraints`).  When given, each node's
                minimum runs over its *allowed* instances only, which can
                only tighten the bound: a constrained node cannot escape to
                a cheap instance the constraints forbid.
        """
        if self.num_nodes == 0:
            return 0.0
        bounds = self.assignment_cost_lower_bounds()
        if allowed_mask is not None:
            bounds = np.where(allowed_mask, bounds, np.inf)
        return float(bounds.min(axis=1).max())

    def threshold_adjacency(self, threshold: float,
                            tolerance: float = 1e-12) -> np.ndarray:
        """Boolean matrix of instance links usable at a cost threshold.

        ``[a, b]`` is ``True`` when the directed link ``a -> b`` costs at
        most ``threshold + tolerance``; the diagonal is always ``False``
        (two application nodes never share an instance).
        """
        allowed = self.cost_array <= threshold + tolerance
        np.fill_diagonal(allowed, False)
        return allowed

    # ------------------------------------------------------------------ #
    # Single-plan evaluation
    # ------------------------------------------------------------------ #

    def edge_costs(self, assignment: np.ndarray) -> np.ndarray:
        """Cost of every communication edge under an index assignment."""
        return self.cost_array[assignment[self.edge_src], assignment[self.edge_dst]]

    def longest_link(self, assignment: np.ndarray) -> float:
        """Longest-link cost of an index assignment (0.0 for edgeless graphs)."""
        if self.num_edges == 0:
            return 0.0
        return float(self.edge_costs(assignment).max())

    def longest_path(self, assignment: np.ndarray) -> float:
        """Longest-path cost via a level-grouped vectorized DAG relaxation."""
        if self.num_edges == 0:
            self._level_groups()  # still reject cyclic graphs consistently
            return 0.0
        best = np.zeros(self.num_nodes)
        cost = self.cost_array
        for group in self._level_groups():
            vals = best[group.src] + cost[assignment[group.src], assignment[group.dst]]
            reduced = np.maximum.reduceat(vals, group.starts)
            best[group.unique_dst] = np.maximum(best[group.unique_dst], reduced)
        return float(best.max())

    def evaluate(self, assignment: np.ndarray, objective: Objective) -> float:
        """Evaluate an index assignment under the requested objective."""
        if objective is Objective.LONGEST_LINK:
            return self.longest_link(assignment)
        if objective is Objective.LONGEST_PATH:
            return self.longest_path(assignment)
        raise ValueError(f"unknown objective {objective!r}")

    def evaluate_plan(self, plan: DeploymentPlan, objective: Objective) -> float:
        """Evaluate a :class:`DeploymentPlan` (lowers it, then evaluates)."""
        return self.evaluate(self.index_plan(plan), objective)

    # ------------------------------------------------------------------ #
    # Batch evaluation
    # ------------------------------------------------------------------ #

    def _batch_longest_link(self, assignments: np.ndarray) -> np.ndarray:
        count = assignments.shape[0]
        if self.num_edges == 0:
            return np.zeros(count)
        out = np.empty(count)
        chunk = max(1, _BATCH_GATHER_BUDGET // max(1, self.num_edges))
        flat_cost = self.cost_array.ravel()
        for start in range(0, count, chunk):
            block = assignments[start:start + chunk]
            # One flat gather over linearized (src, dst) pairs beats a
            # two-array fancy index on large batches.  All gathers go
            # through np.take, which (unlike plain fancy indexing) releases
            # the GIL — that is what lets ParallelEvaluator's thread chunks
            # run concurrently on multi-core hosts.
            linear = np.take(block, self.edge_src, axis=1)
            linear *= self.num_instances
            linear += np.take(block, self.edge_dst, axis=1)
            out[start:start + chunk] = np.take(flat_cost, linear).max(axis=1)
        return out

    def _batch_longest_path(self, assignments: np.ndarray) -> np.ndarray:
        count = assignments.shape[0]
        if self.num_edges == 0:
            self._level_groups()
            return np.zeros(count)
        groups = self._level_groups()
        out = np.empty(count)
        chunk = max(1, _BATCH_GATHER_BUDGET // max(1, self.num_edges + self.num_nodes))
        flat_cost = self.cost_array.ravel()
        for start in range(0, count, chunk):
            block = assignments[start:start + chunk]
            best = np.zeros((block.shape[0], self.num_nodes))
            for group in groups:
                # Same relaxation as before, but every gather routed
                # through GIL-releasing np.take (see _batch_longest_link);
                # only the small unique_dst scatter still holds the GIL.
                linear = np.take(block, group.src, axis=1)
                linear *= self.num_instances
                linear += np.take(block, group.dst, axis=1)
                vals = np.take(best, group.src, axis=1)
                vals += np.take(flat_cost, linear)
                reduced = np.maximum.reduceat(vals, group.starts, axis=1)
                best[:, group.unique_dst] = np.maximum(
                    np.take(best, group.unique_dst, axis=1), reduced
                )
            out[start:start + chunk] = best.max(axis=1)
        return out

    def evaluate_batch(self, assignments: np.ndarray,
                       objective: Objective) -> np.ndarray:
        """Evaluate a ``(k, n)`` array of index assignments in one shot.

        Returns a ``(k,)`` array of deployment costs, equal element-wise to
        evaluating each row with :meth:`evaluate`.
        """
        assignments = np.asarray(assignments)
        if assignments.ndim != 2 or assignments.shape[1] != self.num_nodes:
            raise ValueError(
                f"assignments must have shape (k, {self.num_nodes})"
            )
        if objective is Objective.LONGEST_LINK:
            return self._batch_longest_link(assignments)
        if objective is Objective.LONGEST_PATH:
            return self._batch_longest_path(assignments)
        raise ValueError(f"unknown objective {objective!r}")

    def index_plans(self, plans: Sequence[DeploymentPlan]) -> np.ndarray:
        """Lower a sequence of plans to a ``(k, n)`` index-assignment array.

        The batch counterpart of :meth:`index_plan`: one C-level extraction
        per plan instead of a per-node Python loop.

        Raises:
            InvalidDeploymentError: if any plan misses a node of the graph
                or maps one to an instance outside the cost matrix.
        """
        if not plans:
            return np.empty((0, self.num_nodes), dtype=np.intp)
        if self._plan_getter is None:
            node = self.node_ids[0]
            flat_ids = np.fromiter(
                (plan.instance_for(node) for plan in plans), dtype=np.int64,
                count=len(plans),
            )
        else:
            try:
                flat_ids = np.fromiter(
                    chain.from_iterable(
                        map(self._plan_getter, (plan.as_dict() for plan in plans))
                    ),
                    dtype=np.int64, count=len(plans) * self.num_nodes,
                )
            except KeyError as exc:
                raise InvalidDeploymentError(
                    f"node {exc.args[0]} is not mapped"
                ) from exc
        instance_ids = flat_ids.reshape(len(plans), self.num_nodes)
        return self._instance_indices(instance_ids)

    def evaluate_plans(self, plans: Sequence[DeploymentPlan],
                       objective: Objective) -> np.ndarray:
        """Lower and batch-evaluate a sequence of deployment plans."""
        if not plans:
            return np.empty(0)
        return self.evaluate_batch(self.index_plans(plans), objective)

    def random_assignments(self, count: int,
                           rng: np.random.Generator | int | None = None
                           ) -> np.ndarray:
        """Draw ``count`` uniformly random injective assignments at once.

        Each row is a uniform sample of ``n`` distinct instance indices out
        of ``m`` (the first ``n`` entries of a uniform random permutation).
        """
        if count <= 0:
            raise SolverError("count must be positive to draw random assignments")
        generator = make_rng(rng)
        base = np.broadcast_to(
            np.arange(self.num_instances, dtype=np.intp),
            (count, self.num_instances),
        ).copy()
        permuted = generator.permuted(base, axis=1)
        return np.ascontiguousarray(permuted[:, : self.num_nodes])

    def delta_evaluator(self, plan: DeploymentPlan | np.ndarray,
                        objective: Objective,
                        allowed_mask: Optional[np.ndarray] = None
                        ) -> "DeltaEvaluator":
        """An incremental evaluator positioned at ``plan``.

        ``allowed_mask`` (see :class:`CompiledConstraints`) restricts the
        evaluator's move generation helpers to constraint-respecting moves.
        """
        if isinstance(plan, DeploymentPlan):
            assignment = self.index_plan(plan)
        else:
            assignment = np.array(plan, dtype=np.intp)
        return DeltaEvaluator(self, assignment, objective,
                              allowed_mask=allowed_mask)

    def __repr__(self) -> str:
        return (
            f"CompiledProblem(nodes={self.num_nodes}, edges={self.num_edges}, "
            f"instances={self.num_instances})"
        )


class CompiledConstraints:
    """Placement constraints lowered onto a compiled problem's index space.

    The solving-side view of
    :class:`~repro.core.problem.PlacementConstraints`: a boolean
    ``(num_nodes, num_instances)`` *allowed mask* plus per-node arrays of
    allowed instance indices, built once per problem (through
    :meth:`~repro.core.problem.DeploymentProblem.compiled_constraints`) so
    every solver draws candidates, swap / relocate moves and CP domains from
    the same precomputed arrays instead of re-querying the id-keyed
    constraint dictionaries in its hot loop.

    The mask encodes the full propagated restriction: a forbidden
    ``(node, instance)`` pair is ``False``, a pinned node's row is the
    one-hot of its pin, and a pinned instance's column is ``False`` for
    every other node (the pin occupies it in any feasible plan).

    Args:
        problem: the compiled problem the mask is indexed against.
        allowed_mask: boolean ``(num_nodes, num_instances)`` array;
            ``[i, s]`` is ``True`` when node index ``i`` may be placed on
            instance index ``s``.

    Raises:
        InfeasibleProblemError: if some node has no allowed instance.
    """

    __slots__ = ("problem", "allowed_mask", "allowed_indices",
                 "forced_assignment", "_order")

    def __init__(self, problem: CompiledProblem, allowed_mask: np.ndarray):
        # Always copy: the mask is frozen below, and freezing a view of the
        # caller's array would make *their* array read-only.
        mask = np.array(allowed_mask, dtype=bool, order="C")
        if mask.shape != (problem.num_nodes, problem.num_instances):
            raise InvalidDeploymentError(
                f"allowed mask must have shape "
                f"({problem.num_nodes}, {problem.num_instances})"
            )
        counts = mask.sum(axis=1)
        if problem.num_nodes and not counts.all():
            empty = int(np.flatnonzero(counts == 0)[0])
            raise InfeasibleProblemError(
                f"node {problem.node_ids[empty]} has no allowed instance"
            )
        mask.setflags(write=False)
        self.problem = problem
        self.allowed_mask = mask
        self.allowed_indices: Tuple[np.ndarray, ...] = tuple(
            np.flatnonzero(mask[i]) for i in range(problem.num_nodes)
        )
        #: Instance index each node is forced onto (single allowed value),
        #: or -1 where a choice remains.  Covers explicit pins and
        #: forbidden sets that leave exactly one instance.
        self.forced_assignment = np.where(
            counts == 1, mask.argmax(axis=1), -1
        ).astype(np.intp)
        # Most-constrained-first node order for the feasibility-aware
        # sampler below: placing tight nodes early avoids most dead ends.
        self._order = np.argsort(counts, kind="stable")

    def allows(self, node_idx: int, instance_idx: int) -> bool:
        """Whether node index ``node_idx`` may sit on ``instance_idx``."""
        return bool(self.allowed_mask[node_idx, instance_idx])

    def satisfied(self, assignment: np.ndarray) -> bool:
        """Whether an index assignment respects every constraint."""
        assignment = np.asarray(assignment)
        return bool(
            self.allowed_mask[np.arange(assignment.size), assignment].all()
        )

    def filter_instances(self, node_idx: int,
                         instance_indices: np.ndarray) -> np.ndarray:
        """Subset of ``instance_indices`` allowed for ``node_idx``."""
        return instance_indices[self.allowed_mask[node_idx, instance_indices]]

    def random_assignment(self, rng: np.random.Generator | int | None = None,
                          attempts: int = 8) -> np.ndarray:
        """Draw one random feasible injective assignment.

        Nodes are placed most-constrained-first, each on a uniformly random
        allowed instance still free; a dead end (possible because the
        greedy placement is not a matching algorithm) is retried, then
        resolved exactly through :meth:`matching_assignment`.  The
        distribution is not uniform over feasible assignments — feasible
        sampling is what the randomized solvers need, not uniformity.
        """
        generator = make_rng(rng)
        for _ in range(max(1, attempts)):
            taken = np.zeros(self.problem.num_instances, dtype=bool)
            out = np.empty(self.problem.num_nodes, dtype=np.intp)
            dead_end = False
            for i in self._order:
                candidates = self.allowed_indices[i]
                candidates = candidates[~taken[candidates]]
                if not candidates.size:
                    dead_end = True
                    break
                pick = int(candidates[int(generator.integers(candidates.size))])
                out[i] = pick
                taken[pick] = True
            if not dead_end:
                return out
        return self.matching_assignment(generator)

    def random_assignments(self, count: int,
                           rng: np.random.Generator | int | None = None
                           ) -> np.ndarray:
        """Draw ``count`` random feasible assignments as a ``(count, n)`` array."""
        if count <= 0:
            raise SolverError(
                "count must be positive to draw constrained assignments"
            )
        generator = make_rng(rng)
        return np.stack([
            self.random_assignment(generator) for _ in range(count)
        ])

    def matching_assignment(self,
                            rng: np.random.Generator | int | None = None
                            ) -> np.ndarray:
        """A feasible assignment found exactly via bipartite matching.

        Allowed cells get random costs in ``[0, 1)`` (so repeated calls
        vary), disallowed cells a penalty no feasible full assignment can
        reach; the problem-level joint feasibility validation guarantees a
        penalty-free matching exists.
        """
        from scipy.optimize import linear_sum_assignment

        generator = make_rng(rng)
        n, m = self.allowed_mask.shape
        penalty = float(n + 1)
        cost = np.where(self.allowed_mask, generator.random((n, m)), penalty)
        rows, cols = linear_sum_assignment(cost)
        if cost[rows, cols].max() >= penalty:
            raise InfeasibleProblemError(
                "no assignment places every node on an allowed instance"
            )
        out = np.empty(n, dtype=np.intp)
        out[rows] = cols
        return out

    def __repr__(self) -> str:
        return (
            f"CompiledConstraints(nodes={self.allowed_mask.shape[0]}, "
            f"instances={self.allowed_mask.shape[1]}, "
            f"forced={int((self.forced_assignment >= 0).sum())})"
        )


class IndexedPlan:
    """A deployment plan in engine coordinates (node index -> instance index)."""

    __slots__ = ("problem", "assignment")

    def __init__(self, problem: CompiledProblem, assignment: np.ndarray):
        assignment = np.asarray(assignment, dtype=np.intp)
        if assignment.shape != (problem.num_nodes,):
            raise InvalidDeploymentError(
                f"assignment must have shape ({problem.num_nodes},)"
            )
        if len(np.unique(assignment)) != assignment.size:
            raise InvalidDeploymentError(
                "deployment plan must be injective: two nodes share an instance"
            )
        if assignment.size and (
            assignment.min() < 0 or assignment.max() >= problem.num_instances
        ):
            raise InvalidDeploymentError("assignment refers to unknown instance")
        self.problem = problem
        self.assignment = assignment

    @classmethod
    def from_plan(cls, problem: CompiledProblem, plan: DeploymentPlan) -> "IndexedPlan":
        """Lower a :class:`DeploymentPlan` into engine coordinates."""
        return cls(problem, problem.index_plan(plan))

    def to_plan(self) -> DeploymentPlan:
        """Rehydrate into a :class:`DeploymentPlan`."""
        return self.problem.plan_from_assignment(self.assignment)

    def cost(self, objective: Objective) -> float:
        """Deployment cost of this plan under ``objective``."""
        return self.problem.evaluate(self.assignment, objective)

    def __repr__(self) -> str:
        return f"IndexedPlan(nodes={self.assignment.size})"


# Telemetry counters for the incremental evaluator: single-move peeks and
# commits, plus batched peek_many calls and the moves they scored.  Plain
# unlocked increments — the peek path is the solvers' innermost loop, and a
# lock acquisition per peek would cost more than the counter is worth; under
# CPython the occasional lost increment is telemetry noise, nothing more.
# Snapshot via delta_counters(), surfaced through
# repro.core.parallel.parallel_stats() -> SessionStats -> /metrics.
_DELTA_PEEKS = 0
_DELTA_COMMITS = 0
_BATCH_PEEK_CALLS = 0
_BATCH_PEEKED_MOVES = 0


def delta_counters() -> Tuple[int, int, int, int]:
    """Process-wide ``(peeks, commits, batch_calls, batch_moves)`` snapshot."""
    return (_DELTA_PEEKS, _DELTA_COMMITS, _BATCH_PEEK_CALLS,
            _BATCH_PEEKED_MOVES)


class MoveBatch:
    """A block of candidate moves as structured arrays.

    The vectorized neighborhood kernels (:meth:`DeltaEvaluator.peek_many`)
    score a whole batch in a handful of NumPy passes, so the batch itself
    is stored columnar: parallel ``kinds`` / ``first`` / ``second`` arrays
    rather than a list of tuples.

    * a **swap** row (``kinds == MoveBatch.SWAP``) exchanges the instances
      of node indices ``first`` and ``second``;
    * a **relocate** row (``kinds == MoveBatch.RELOCATE``) moves node index
      ``first`` onto the free instance index ``second``.
    """

    SWAP = 0
    RELOCATE = 1

    __slots__ = ("kinds", "first", "second")

    def __init__(self, kinds: np.ndarray, first: np.ndarray,
                 second: np.ndarray):
        self.kinds = np.ascontiguousarray(kinds, dtype=np.uint8)
        self.first = np.ascontiguousarray(first, dtype=np.intp)
        self.second = np.ascontiguousarray(second, dtype=np.intp)
        if not (self.kinds.ndim == self.first.ndim == self.second.ndim == 1):
            raise InvalidDeploymentError("move batch columns must be 1-D")
        if not (self.kinds.size == self.first.size == self.second.size):
            raise InvalidDeploymentError(
                "move batch columns must have equal lengths"
            )

    @classmethod
    def from_moves(cls, moves: Sequence[Tuple[str, int, int]]) -> "MoveBatch":
        """Build a batch from ``("swap", a, b)`` / ``("relocate", n, i)`` tuples."""
        count = len(moves)
        kinds = np.empty(count, dtype=np.uint8)
        first = np.empty(count, dtype=np.intp)
        second = np.empty(count, dtype=np.intp)
        for row, (kind, a, b) in enumerate(moves):
            if kind == "swap":
                kinds[row] = cls.SWAP
            elif kind == "relocate":
                kinds[row] = cls.RELOCATE
            else:
                raise InvalidDeploymentError(f"unknown move kind {kind!r}")
            first[row] = a
            second[row] = b
        return cls(kinds, first, second)

    def __len__(self) -> int:
        return self.kinds.size

    def __repr__(self) -> str:
        swaps = int((self.kinds == self.SWAP).sum())
        return (f"MoveBatch(moves={len(self)}, swaps={swaps}, "
                f"relocates={len(self) - swaps})")


class DeltaEvaluator:
    """Incremental move scoring on top of a :class:`CompiledProblem`.

    Tracks a current assignment and its cost.  ``swap_cost`` /
    ``relocate_cost`` score a candidate move without mutating state;
    ``apply_swap`` / ``apply_relocate`` commit it.  For the longest-link
    objective a candidate is scored from the edges incident to the moved
    nodes alone: unchanged edges keep their cached cost, so the candidate
    cost is ``max(untouched maximum, new incident costs)``.  The untouched
    maximum is the cached global maximum unless the move touches the
    current critical edge, in which case one vectorized masked max over the
    cached edge costs recomputes it.

    The longest-path objective is scored incrementally as well: the
    evaluator caches, per node, the longest path *ending* at that node
    (``finish``) and the in-edge realising it (``argmax``).  A move recosts
    only the edges incident to the moved nodes, then re-relaxes a sparse
    frontier in topological-level order — a node is fully recomputed only
    when moved or when the edge realising its cached maximum got cheaper;
    any other touched in-edge is a constant-time "does it beat the cached
    maximum" test, and a node whose value washes out stops the propagation
    dead.  Commits are O(touched): the peeked ``finish``/``argmax`` vectors
    and edge-cost updates are installed without re-relaxing anything.  Both
    objectives return costs bit-identical to re-evaluating from scratch
    (the same float64 adds and max reductions over the same entries),
    which the tests pin against the oracle move-by-move.

    When constructed with an ``allowed_mask`` (see
    :class:`CompiledConstraints`), the evaluator also filters move
    generation: :meth:`free_instance_indices` can restrict free instances to
    those allowed for a node, :meth:`swap_allowed` answers in O(1) from the
    mask, and scoring or committing a disallowed move raises
    :class:`InvalidDeploymentError` — constraint-aware solvers cannot
    silently wander out of the feasible region.

    The cached edge costs embed the cost array the evaluator was primed
    against.  After a :meth:`CompiledProblem.refresh_costs` every scoring
    and committing method raises :class:`SolverError` until
    :meth:`reprime` re-derives the incremental state — a stale evaluator
    can never silently mix old and new costs.
    """

    def __init__(self, problem: CompiledProblem, assignment: np.ndarray,
                 objective: Objective,
                 allowed_mask: Optional[np.ndarray] = None):
        self.problem = problem
        self.objective = objective
        self.allowed_mask = allowed_mask
        self.assignment = np.array(assignment, dtype=np.intp)
        self._node_of_instance = np.full(problem.num_instances, -1, dtype=np.intp)
        self._node_of_instance[self.assignment] = np.arange(problem.num_nodes)
        # Last scored candidate, so the common peek-then-apply sequence in
        # the solvers does not evaluate the same move twice.  Holds
        # (move key, cost, objective-specific commit payload).
        self._last_peek: Optional[Tuple[Tuple[Tuple[int, int], ...],
                                        float, tuple]] = None
        self._prime()

    def _prime(self) -> None:
        """(Re)derive all cost-dependent state from the problem's cost array."""
        if self.objective is Objective.LONGEST_LINK:
            self._edge_costs = self.problem.edge_costs(self.assignment)
            self._cost = (float(self._edge_costs.max())
                          if self.problem.num_edges else 0.0)
        elif self.objective is Objective.LONGEST_PATH:
            self._edge_costs = None
            self._prime_longest_path()
        else:
            raise ValueError(f"unknown objective {self.objective!r}")
        self._last_peek = None
        self._epoch = self.problem.cost_epoch

    def _prime_longest_path(self) -> None:
        """Build the incremental longest-path state from scratch.

        One full relaxation in topological-level order, tracking per node
        the longest path ending there (``finish``) and the in-edge
        realising it (``argmax``, -1 for sources).  Edge costs live in a
        plain Python list: the sparse deltas touch a handful of entries
        per move, where list indexing beats array access hands down.

        Also derives the window-local peek state: per-level finish maxima
        plus lazily extended prefix/suffix maxima over levels, so a peek's
        cost is ``max(prefix, changed window, suffix)`` instead of an O(n)
        ``max(finish)`` over fresh O(n) list copies.
        """
        problem = self.problem
        struct = problem._lp_delta_structure()
        self._lp_struct = struct
        self._lp_rows = problem._cost_rows()
        self._lp_item = problem.cost_array.item
        self._asg: List[int] = self.assignment.tolist()
        ec: List[float] = (problem.edge_costs(self.assignment).tolist()
                           if problem.num_edges else [])
        self._lp_ec = ec
        finish = [0.0] * problem.num_nodes
        argmax = [-1] * problem.num_nodes
        in_edges = struct.in_edges
        for v in struct.order:
            best = 0.0
            arg = -1
            for u, e in in_edges[v]:
                cand = finish[u] + ec[e]
                if cand > best:
                    best = cand
                    arg = e
            finish[v] = best
            argmax[v] = arg
        self._lp_finish = finish
        self._lp_argmax = argmax
        num_levels = struct.num_levels
        level_max = [float("-inf")] * num_levels
        levels = struct.levels
        for v in range(problem.num_nodes):
            fv = finish[v]
            lv = levels[v]
            if fv > level_max[lv]:
                level_max[lv] = fv
        self._lp_level_max = level_max
        # Lazy running maxima over levels.  prefix[i] = max(level_max[:i+1])
        # is valid for i < _lp_prefix_len; suffix[i] = max(level_max[i:]) is
        # valid for i >= _lp_suffix_start.  Commits invalidate in O(1) by
        # clamping the validity bounds to the committed window; peeks extend
        # them on demand, so the amortised cost tracks how far the window
        # actually moves between commits.
        self._lp_prefix = [float("-inf")] * num_levels
        self._lp_prefix_len = 0
        self._lp_suffix = [float("-inf")] * num_levels
        self._lp_suffix_start = num_levels
        # Version-stamped candidate scratch: ``_cand_finish[v]`` /
        # ``_cand_argmax[v]`` hold a peeked value iff ``_cand_stamp[v]``
        # equals the current ``_cand_version`` (bumped per peek, an O(1)
        # reset).  Plain lists instead of per-peek dicts: the sparse
        # re-relaxation is all point reads/writes, where list indexing
        # beats dict hashing — and nothing is allocated per peek.
        n = problem.num_nodes
        self._cand_finish = [0.0] * n
        self._cand_argmax = [-1] * n
        self._cand_stamp = [0] * n
        self._cand_recompute = [0] * n
        self._cand_sched = [0] * n
        self._cand_buckets = [[] for _ in range(num_levels)]
        self._cand_version = 0
        self._cost = max(finish) if finish else 0.0

    def _lp_prefix_upto(self, idx: int) -> float:
        """Max committed level maximum over levels ``0..idx`` (-inf if idx < 0)."""
        if idx < 0:
            return float("-inf")
        prefix = self._lp_prefix
        k = self._lp_prefix_len
        if k <= idx:
            level_max = self._lp_level_max
            run = prefix[k - 1] if k else float("-inf")
            while k <= idx:
                val = level_max[k]
                if val > run:
                    run = val
                prefix[k] = run
                k += 1
            self._lp_prefix_len = k
        return prefix[idx]

    def _lp_suffix_from(self, idx: int) -> float:
        """Max committed level maximum over levels ``idx..`` (-inf past the end)."""
        num_levels = self._lp_struct.num_levels
        if idx >= num_levels:
            return float("-inf")
        suffix = self._lp_suffix
        s = self._lp_suffix_start
        if s > idx:
            level_max = self._lp_level_max
            run = suffix[s] if s < num_levels else float("-inf")
            while s > idx:
                s -= 1
                val = level_max[s]
                if val > run:
                    run = val
                suffix[s] = run
            self._lp_suffix_start = s
        return suffix[idx]

    def reprime(self, assignment: Optional[np.ndarray] = None) -> float:
        """Re-derive cached costs after a :meth:`CompiledProblem.refresh_costs`.

        Cached edge costs, the incumbent cost and the last peeked candidate
        all embed the cost array the evaluator was primed against; after a
        refresh they are stale, and every scoring method refuses to run
        until this is called.  Optionally repositions the evaluator at a
        different ``assignment`` in the same call.

        Returns:
            The current cost under the refreshed cost array.
        """
        if assignment is not None:
            assignment = np.array(assignment, dtype=np.intp)
            if assignment.shape != self.assignment.shape:
                raise InvalidDeploymentError(
                    f"assignment must have shape {self.assignment.shape}"
                )
            self.assignment = assignment
            self._node_of_instance.fill(-1)
            self._node_of_instance[self.assignment] = np.arange(
                self.problem.num_nodes)
        self._prime()
        return self._cost

    def _check_epoch(self) -> None:
        if self._epoch != self.problem.cost_epoch:
            raise SolverError(
                "the compiled problem's costs were refreshed; call "
                "DeltaEvaluator.reprime() before scoring or committing moves"
            )

    @property
    def current_cost(self) -> float:
        """Cost of the current assignment."""
        self._check_epoch()
        return self._cost

    def free_instance_indices(self, node: Optional[int] = None) -> np.ndarray:
        """Indices of instances not hosting any node, ascending.

        With ``node`` given (and an allowed mask installed), only the free
        instances that node may legally move to are returned.
        """
        free = np.flatnonzero(self._node_of_instance < 0)
        if node is not None and self.allowed_mask is not None:
            free = free[self.allowed_mask[node, free]]
        return free

    def swap_allowed(self, node_a: int, node_b: int) -> bool:
        """Whether exchanging two nodes' instances respects the mask."""
        if self.allowed_mask is None:
            return True
        return bool(self.allowed_mask[node_a, self.assignment[node_b]]
                    and self.allowed_mask[node_b, self.assignment[node_a]])

    def plan(self) -> DeploymentPlan:
        """The current assignment as a :class:`DeploymentPlan`."""
        return self.problem.plan_from_assignment(self.assignment)

    def indexed_plan(self) -> IndexedPlan:
        """The current assignment as an :class:`IndexedPlan` (copy)."""
        return IndexedPlan(self.problem, self.assignment.copy())

    # ------------------------------------------------------------------ #
    # Move scoring
    # ------------------------------------------------------------------ #

    def _touched_and_moves(self, moves: Dict[int, int]) -> Tuple[np.ndarray, np.ndarray]:
        """Touched edge ids and their costs after applying ``moves``.

        ``moves`` maps node index to new instance index.
        """
        problem = self.problem
        touched = np.unique(np.concatenate(
            [problem.incident_edges(node) for node in moves]
        )) if moves else np.empty(0, dtype=np.intp)
        if touched.size == 0:
            return touched, np.empty(0)
        src = self.assignment[problem.edge_src[touched]]
        dst = self.assignment[problem.edge_dst[touched]]
        for node, instance in moves.items():
            src[problem.edge_src[touched] == node] = instance
            dst[problem.edge_dst[touched] == node] = instance
        return touched, problem.cost_array[src, dst]

    def _candidate_cost_ll(self, touched: np.ndarray,
                           new_costs: np.ndarray) -> float:
        if touched.size == 0:
            return self._cost
        # The untouched edges keep their costs, so their maximum is the
        # cached global maximum unless a touched edge realises it.
        if float(self._edge_costs[touched].max()) < self._cost:
            untouched_max = self._cost
        else:
            mask = np.ones(self.problem.num_edges, dtype=bool)
            mask[touched] = False
            remaining = self._edge_costs[mask]
            untouched_max = float(remaining.max()) if remaining.size else 0.0
        return max(untouched_max, float(new_costs.max()))

    def _candidate_cost_lp(self, moves: Dict[int, int]) -> Tuple[float, tuple]:
        """Incremental longest-path cost of ``moves`` plus its commit payload.

        Recosts the incident edges in place (restored before returning),
        then re-relaxes only the affected frontier in level order — see the
        class docstring for the argmax-test / recompute / washout rules.
        The re-relaxation writes version-stamped scratch arrays overlaying
        the committed ``finish`` / ``argmax`` lists instead of copying
        them (a node reads as peeked iff its stamp matches the current
        peek version, so resetting the overlay is a counter bump), and
        the cost combines per-level maxima window-locally —
        ``max(prefix(lo-1), changed levels, suffix(hi+1))`` — so a peek
        is O(frontier + window), not O(n).  Returns ``(cost,
        (touched nodes, edge updates, level-max overlay))``; the payload
        is exactly what :meth:`_commit` installs (reading the scratch
        arrays directly — valid because a commit always consumes its own
        immediately-preceding peek via the ``_last_peek`` memo), so
        committing a peeked move costs O(touched).
        """
        struct = self._lp_struct
        asg = self._asg
        ec = self._lp_ec
        finish = self._lp_finish
        argmax = self._lp_argmax
        rows = self._lp_rows
        item = self._lp_item
        in_edges = struct.in_edges
        out_edges = struct.out_edges
        levels = struct.levels

        # The candidate overlay for this peek: bumping the version
        # invalidates every stamp from prior peeks in O(1).
        self._cand_version += 1
        version = self._cand_version
        cand_finish = self._cand_finish
        cand_argmax = self._cand_argmax
        stamp = self._cand_stamp
        resc = self._cand_recompute
        sched = self._cand_sched
        touched_nodes: List[int] = []

        # Phase 1 — recost every edge incident to a moved node, in place
        # (restored before returning).  Each touched edge is visited
        # exactly once: an edge between two moved nodes is handled by the
        # source's out-edge pass and skipped by the in-edge pass.
        touched: List[Tuple[int, float, float]] = []  # (edge, old, new)
        pending: Dict[int, List[Tuple[int, int]]] = {}
        for v, inst in moves.items():
            row = rows[inst] if rows is not None else None
            for w, e in out_edges[v]:
                wi = moves.get(w)
                if wi is None:
                    wi = asg[w]
                c = row[wi] if row is not None else item(inst, wi)
                touched.append((e, ec[e], c))
                ec[e] = c
                if w not in moves:
                    tests = pending.get(w)
                    if tests is None:
                        pending[w] = [(v, e)]
                    else:
                        tests.append((v, e))
            for u, e in in_edges[v]:
                if u in moves:
                    continue
                ui = asg[u]
                c = rows[ui][inst] if rows is not None else item(ui, inst)
                touched.append((e, ec[e], c))
                ec[e] = c

        # Phase 2 — sparse re-relaxation over the affected frontier, in
        # level order so every node sees final predecessor values.  The
        # candidate state lives in the stamped scratch arrays (a node
        # whose stamp misses the version reads as ``finish[v]``), so the
        # peek touches O(frontier) entries and allocates nothing per
        # node.  Levels are contiguous ints, so the level-ordered agenda
        # is a cursor over persistent per-level buckets (cleared after
        # processing) rather than a dict keyed priority queue; edges go
        # to strictly higher levels, so the cursor never backtracks.
        level_buckets = self._cand_buckets
        first_lv = struct.num_levels
        last_lv = -1
        for v in moves:
            resc[v] = version
            sched[v] = version
            lv = levels[v]
            level_buckets[lv].append(v)
            if lv < first_lv:
                first_lv = lv
            if lv > last_lv:
                last_lv = lv
        for v in pending:
            if sched[v] != version:
                sched[v] = version
                lv = levels[v]
                level_buckets[lv].append(v)
                if lv < first_lv:
                    first_lv = lv
                if lv > last_lv:
                    last_lv = lv
        lv = first_lv
        while lv <= last_lv:
            bucket = level_buckets[lv]
            lv += 1
            if not bucket:
                continue
            for v in bucket:
                if resc[v] == version:
                    best = 0.0
                    arg = -1
                    for u, e in in_edges[v]:
                        fu = cand_finish[u] if stamp[u] == version else finish[u]
                        cand = fu + ec[e]
                        if cand > best:
                            best = cand
                            arg = e
                    if stamp[v] != version:
                        stamp[v] = version
                        touched_nodes.append(v)
                    cand_finish[v] = best
                    cand_argmax[v] = arg
                else:
                    cur = cand_finish[v] if stamp[v] == version else finish[v]
                    for u, e in pending.get(v, ()):
                        fu = cand_finish[u] if stamp[u] == version else finish[u]
                        cand = fu + ec[e]
                        if cand > cur:
                            cur = cand
                            if stamp[v] != version:
                                stamp[v] = version
                                touched_nodes.append(v)
                            cand_finish[v] = cand
                            cand_argmax[v] = e
                        elif cand < cur and (
                            cand_argmax[v] if stamp[v] == version else argmax[v]
                        ) == e:
                            # The edge realising v's cached maximum got
                            # cheaper; nothing else is cached, so fall
                            # back to a full recompute of this node.
                            best = 0.0
                            arg = -1
                            for u2, e2 in in_edges[v]:
                                fu2 = (cand_finish[u2]
                                       if stamp[u2] == version else finish[u2])
                                cand2 = fu2 + ec[e2]
                                if cand2 > best:
                                    best = cand2
                                    arg = e2
                            cur = best
                            if stamp[v] != version:
                                stamp[v] = version
                                touched_nodes.append(v)
                            cand_finish[v] = best
                            cand_argmax[v] = arg
                fv = cand_finish[v] if stamp[v] == version else finish[v]
                if fv != finish[v]:
                    for w, e in out_edges[v]:
                        cand = fv + ec[e]
                        fw = cand_finish[w] if stamp[w] == version else finish[w]
                        if cand > fw:
                            if stamp[w] != version:
                                stamp[w] = version
                                touched_nodes.append(w)
                            cand_finish[w] = cand
                            cand_argmax[w] = e
                        elif cand < fw and (
                            cand_argmax[w] if stamp[w] == version else argmax[w]
                        ) == e:
                            resc[w] = version
                        else:
                            continue
                        if sched[w] != version:
                            sched[w] = version
                            wl = levels[w]
                            level_buckets[wl].append(w)
                            if wl > last_lv:
                                last_lv = wl
            bucket.clear()

        # Phase 3 — window-local cost from per-level maxima.  Only levels
        # holding a genuinely changed node matter: a level whose maximum
        # may have *decreased* (a changed node sat at the committed
        # maximum and dropped) is rescanned through the overlay; any other
        # changed level's new maximum is max(committed max, changed
        # values).  Everything outside the [lo, hi] window is covered by
        # the lazily extended prefix/suffix maxima.
        level_max = self._lp_level_max
        changed_max: Dict[int, float] = {}
        rescan: set = set()
        for v in touched_nodes:
            val = cand_finish[v]
            old = finish[v]
            if val == old:
                continue
            lv = levels[v]
            cur = changed_max.get(lv)
            if cur is None or val > cur:
                changed_max[lv] = val
            if val < old and old == level_max[lv]:
                rescan.add(lv)
        for e, old, _ in touched:
            ec[e] = old
        new_level_max: Dict[int, float] = {}
        if not changed_max:
            cost = self._cost
        else:
            level_nodes = struct.level_nodes
            for lv in rescan:
                best = float("-inf")
                for v in level_nodes[lv]:
                    fv = cand_finish[v] if stamp[v] == version else finish[v]
                    if fv > best:
                        best = fv
                new_level_max[lv] = best
            for lv, mx in changed_max.items():
                if lv in rescan:
                    continue
                cur = level_max[lv]
                new_level_max[lv] = mx if mx > cur else cur
            lo = min(new_level_max)
            hi = max(new_level_max)
            cost = self._lp_prefix_upto(lo - 1)
            tail = self._lp_suffix_from(hi + 1)
            if tail > cost:
                cost = tail
            window_mx = max(new_level_max.values())
            slice_mx = max(level_max[lo:hi + 1])
            if slice_mx <= window_mx or not rescan:
                # Fast path: the stale committed slice maximum is either
                # dominated by a changed level's new value or realised by
                # a level whose maximum cannot have dropped (no rescan),
                # so max(changed values, committed slice) is exact — two
                # C-level max calls instead of a per-level Python loop.
                if window_mx > cost:
                    cost = window_mx
                if slice_mx > cost:
                    cost = slice_mx
            else:
                for lv in range(lo, hi + 1):
                    val = new_level_max.get(lv)
                    if val is None:
                        val = level_max[lv]
                    if val > cost:
                        cost = val
            if cost == float("-inf"):  # pragma: no cover - defensive
                cost = 0.0
        return cost, (touched_nodes, touched, new_level_max)

    def _candidate_cost(self, moves: Dict[int, int]) -> Tuple[float, tuple]:
        """Cost of applying ``moves`` plus the payload a commit would install.

        Validates the move against the allowed mask and the cost epoch,
        and memoises the last scored candidate so the solvers' ubiquitous
        peek-then-apply sequence evaluates each move once.
        """
        self._check_epoch()
        if self.allowed_mask is not None:
            for node, instance in moves.items():
                if not self.allowed_mask[node, instance]:
                    raise InvalidDeploymentError(
                        f"move places node index {node} on disallowed "
                        f"instance index {instance}"
                    )
        key = tuple(sorted(moves.items()))
        peek = self._last_peek
        if peek is not None and peek[0] == key:
            return peek[1], peek[2]
        global _DELTA_PEEKS
        _DELTA_PEEKS += 1
        if self.objective is Objective.LONGEST_LINK:
            touched, new_costs = self._touched_and_moves(moves)
            cost = self._candidate_cost_ll(touched, new_costs)
            payload = (touched, new_costs)
        else:
            cost, payload = self._candidate_cost_lp(moves)
        self._last_peek = (key, cost, payload)
        return cost, payload

    def _swap_moves(self, node_a: int, node_b: int) -> Dict[int, int]:
        a = int(node_a)
        b = int(node_b)
        return {
            a: int(self.assignment[b]),
            b: int(self.assignment[a]),
        }

    def swap_cost(self, node_a: int, node_b: int) -> float:
        """Cost after exchanging the instances of two nodes (not applied)."""
        cost, _ = self._candidate_cost(self._swap_moves(node_a, node_b))
        return cost

    def relocate_cost(self, node: int, instance: int) -> float:
        """Cost after moving ``node`` to a free ``instance`` (not applied)."""
        self._check_free(node, instance)
        cost, _ = self._candidate_cost({int(node): int(instance)})
        return cost

    def _check_free(self, node: int, instance: int) -> None:
        occupant = self._node_of_instance[instance]
        if occupant >= 0 and occupant != node:
            raise InvalidDeploymentError(
                f"instance index {instance} already hosts node index {occupant}"
            )

    # ------------------------------------------------------------------ #
    # Batched move scoring (vectorized neighborhood kernels)
    # ------------------------------------------------------------------ #

    def _validate_batch(self, batch: MoveBatch) -> None:
        """Vectorized batch-wide counterpart of the per-move validation."""
        n = self.problem.num_nodes
        m = self.problem.num_instances
        kinds = batch.kinds
        first = batch.first
        second = batch.second
        is_swap = kinds == MoveBatch.SWAP
        if not np.all(is_swap | (kinds == MoveBatch.RELOCATE)):
            raise InvalidDeploymentError("unknown move kind in batch")
        if first.size and (first.min() < 0 or first.max() >= n):
            raise InvalidDeploymentError("node index out of range in batch")
        swap_second = second[is_swap]
        if swap_second.size and (swap_second.min() < 0
                                 or swap_second.max() >= n):
            raise InvalidDeploymentError("node index out of range in batch")
        reloc = ~is_swap
        reloc_second = second[reloc]
        if reloc_second.size:
            if reloc_second.min() < 0 or reloc_second.max() >= m:
                raise InvalidDeploymentError(
                    "instance index out of range in batch"
                )
            occupant = self._node_of_instance[reloc_second]
            bad = (occupant >= 0) & (occupant != first[reloc])
            if bad.any():
                row = int(np.flatnonzero(bad)[0])
                raise InvalidDeploymentError(
                    f"instance index {int(reloc_second[row])} already hosts "
                    f"node index {int(occupant[row])}"
                )
        if self.allowed_mask is not None:
            asg = self.assignment
            target1 = np.where(is_swap, asg[np.where(is_swap, second, 0)],
                               second)
            ok = self.allowed_mask[first, target1]
            if is_swap.any():
                ok = ok & np.where(
                    is_swap, self.allowed_mask[np.where(is_swap, second, 0),
                                               asg[first]], True)
            if not ok.all():
                row = int(np.flatnonzero(~ok)[0])
                raise InvalidDeploymentError(
                    f"move places node index {int(first[row])} on disallowed "
                    f"instance index {int(target1[row])}"
                )

    def _batch_move_targets(self, batch: MoveBatch
                            ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-row ``(is_swap, target of first, second-node sentinel)``.

        ``target of first`` is the instance the row's ``first`` node ends up
        on (the swap partner's current instance, or the relocate target).
        The sentinel column holds the swap partner's node index for swap
        rows and -1 for relocations, so endpoint-override compares never
        match a relocate row twice.
        """
        asg = self.assignment
        is_swap = batch.kinds == MoveBatch.SWAP
        safe_second = np.where(is_swap, batch.second, 0)
        target1 = np.where(is_swap, asg[safe_second], batch.second)
        node2 = np.where(is_swap, batch.second, -1)
        return is_swap, target1, node2

    def candidate_assignments(self, batch: MoveBatch) -> np.ndarray:
        """Materialize the ``(k, n)`` assignment each batch row would commit.

        Row ``k`` is the current assignment with move ``k`` applied — the
        input :meth:`CompiledProblem.evaluate_batch` needs to score the
        batch through the full (pool-routable) engines.
        """
        is_swap, target1, _ = self._batch_move_targets(batch)
        count = len(batch)
        assignments = np.broadcast_to(
            self.assignment, (count, self.problem.num_nodes)).copy()
        rows = np.arange(count)
        assignments[rows, batch.first] = target1
        swap_rows = np.flatnonzero(is_swap)
        assignments[swap_rows, batch.second[swap_rows]] = (
            self.assignment[batch.first[swap_rows]]
        )
        return assignments

    def _peek_many_ll(self, batch: MoveBatch) -> np.ndarray:
        """Batched longest-link peek: one padded touched-edge gather.

        Every row's touched edges are gathered through the problem's
        padded incident matrix (duplicates and -1 padding are masked to
        ``-inf``, harmless under max), endpoint instances are overridden
        where an endpoint is the row's moved node, and the new per-row
        maximum combines with the untouched maximum exactly as the serial
        :meth:`_candidate_cost_ll` does — including its rare masked-max
        fallback for rows that touch the current critical edge.
        """
        problem = self.problem
        count = len(batch)
        if problem.num_edges == 0:
            return np.full(count, self._cost)
        asg = self.assignment
        is_swap, target1, node2 = self._batch_move_targets(batch)
        pad = problem._incident_padded()
        eids = np.concatenate(
            [pad[batch.first], pad[np.where(is_swap, batch.second,
                                            batch.first)]], axis=1)
        valid = eids >= 0
        safe = np.where(valid, eids, 0)
        old_vals = np.where(valid, self._edge_costs[safe], -np.inf)
        old_touched_max = old_vals.max(axis=1)

        src_nodes = problem.edge_src[safe]
        dst_nodes = problem.edge_dst[safe]
        src_inst = asg[src_nodes]
        dst_inst = asg[dst_nodes]
        n1 = batch.first[:, None]
        i1 = target1[:, None]
        n2 = node2[:, None]
        i2 = asg[batch.first][:, None]
        src_inst = np.where(src_nodes == n1, i1, src_inst)
        src_inst = np.where(src_nodes == n2, i2, src_inst)
        dst_inst = np.where(dst_nodes == n1, i1, dst_inst)
        dst_inst = np.where(dst_nodes == n2, i2, dst_inst)
        linear = src_inst * problem.num_instances + dst_inst
        new_vals = np.where(valid, problem.cost_array.ravel()[linear], -np.inf)
        new_max = new_vals.max(axis=1)

        untouched = np.full(count, self._cost)
        slow_rows = np.flatnonzero(old_touched_max >= self._cost)
        for row in slow_rows:
            mask = np.ones(problem.num_edges, dtype=bool)
            mask[eids[row][valid[row]]] = False
            remaining = self._edge_costs[mask]
            untouched[row] = float(remaining.max()) if remaining.size else 0.0
        return np.maximum(untouched, new_max)

    def _peek_many_lp(self, batch: MoveBatch) -> np.ndarray:
        """Batched longest-path peek via a window-local level sweep.

        Broadcasts the committed per-node ``finish`` values across the
        batch, zeroes every column at or above the batch's lowest moved
        level, and re-relaxes the level groups upward with row-specific
        edge costs.  The sweep stops early once no changed node's reach
        (see :meth:`CompiledProblem._lp_reach`) extends past the levels
        already finalized; the per-row cost then combines the recomputed
        window with the committed prefix/suffix level maxima —
        ``max(prefix(lo-1), window, suffix(stop+1))`` — exactly the PR 9
        window-local peek, broadcast across the batch.  Costs are
        bit-identical to the serial sparse peek: the same float64 adds in
        topological order, combined with exact max reductions.
        """
        problem = self.problem
        count = len(batch)
        if problem.num_edges == 0:
            return np.full(count, self._cost)
        levels = problem._node_levels()
        reach = problem._lp_reach()
        is_swap, _, _ = self._batch_move_targets(batch)

        lvl_first = levels[batch.first]
        lvl_second = levels[np.where(is_swap, batch.second, batch.first)]
        lo_min = int(min(lvl_first.min(), lvl_second.min()))
        stop_lv = int(max(
            lvl_first.max(), lvl_second.max(),
            reach[batch.first].max(),
            reach[np.where(is_swap, batch.second, batch.first)].max(),
        ))

        assignments = self.candidate_assignments(batch)
        committed = np.asarray(self._lp_finish)
        best = np.broadcast_to(committed, (count, problem.num_nodes)).copy()
        best[:, levels >= lo_min] = 0.0

        flat_cost = problem.cost_array.ravel()
        groups = problem._level_groups()
        group_dst_max = problem._group_max_dst_levels()
        src_levels = [int(levels[group.src[0]]) for group in groups]
        num_levels = int(levels.max()) + 1 if problem.num_nodes else 0
        for gi, group in enumerate(groups):
            if src_levels[gi] > stop_lv:
                break
            if group_dst_max[gi] < lo_min:
                continue
            linear = np.take(assignments, group.src, axis=1)
            linear *= problem.num_instances
            linear += np.take(assignments, group.dst, axis=1)
            vals = np.take(best, group.src, axis=1)
            vals += np.take(flat_cost, linear)
            reduced = np.maximum.reduceat(vals, group.starts, axis=1)
            updated = np.maximum(
                np.take(best, group.unique_dst, axis=1), reduced)
            best[:, group.unique_dst] = updated
            # Extend the stop level past every destination whose value now
            # differs from the committed relaxation in any row: only those
            # nodes can push changes further up the DAG.
            changed = (updated != committed[group.unique_dst]).any(axis=0)
            if changed.any():
                climb = int(reach[group.unique_dst[changed]].max())
                if climb > stop_lv:
                    stop_lv = climb
        stop_lv = min(stop_lv, num_levels - 1)

        window = (levels >= lo_min) & (levels <= stop_lv)
        window_max = best[:, window].max(axis=1)
        base = self._lp_prefix_upto(lo_min - 1)
        tail = self._lp_suffix_from(stop_lv + 1)
        if tail > base:
            base = tail
        return np.maximum(window_max, base)

    def peek_many(self, moves: "MoveBatch | Sequence[Tuple[str, int, int]]",
                  workers: Optional[int | str] = None) -> np.ndarray:
        """Score a whole block of candidate moves in one vectorized pass.

        Returns a ``(k,)`` float array whose entry ``k`` equals what
        :meth:`swap_cost` / :meth:`relocate_cost` would return for move
        ``k`` — bit-identical, so solvers can batch their peeks without
        perturbing seeded trajectories.  Scoring does not mutate the
        evaluator (no commit payloads are produced; committing a chosen
        move re-peeks it through the serial path).

        ``workers`` (the :class:`~repro.solvers.base.SearchBudget` spec:
        ``"auto"``, an int, or ``"procs[:N]"``) routes blocks whose gather
        footprint crosses :data:`PARALLEL_MIN_CELLS` through the thread or
        shared-memory process pools as a full candidate-assignment batch
        evaluation — still bit-identical, per the engines' contract.

        Raises the same errors as the serial peeks: ``SolverError`` after
        a cost refresh (until :meth:`reprime`), ``InvalidDeploymentError``
        for out-of-range indices, occupied relocate targets, or moves the
        allowed mask forbids.
        """
        self._check_epoch()
        batch = (moves if isinstance(moves, MoveBatch)
                 else MoveBatch.from_moves(moves))
        count = len(batch)
        if count == 0:
            return np.empty(0)
        self._validate_batch(batch)
        global _BATCH_PEEK_CALLS, _BATCH_PEEKED_MOVES
        _BATCH_PEEK_CALLS += 1
        _BATCH_PEEKED_MOVES += count
        if (workers is not None
                and count * max(1, self.problem.num_edges)
                >= PARALLEL_MIN_CELLS):
            mode, pool_workers = workers_spec(workers)
            assignments = self.candidate_assignments(batch)
            if mode == "procs":
                from .parallel import ProcessPoolEvaluator
                scorer: Any = ProcessPoolEvaluator(self.problem,
                                                   workers=pool_workers)
            else:
                scorer = ParallelEvaluator(self.problem, workers=pool_workers)
            return scorer.evaluate_batch(assignments, self.objective)
        if self.objective is Objective.LONGEST_LINK:
            return self._peek_many_ll(batch)
        return self._peek_many_lp(batch)

    # ------------------------------------------------------------------ #
    # Committing moves
    # ------------------------------------------------------------------ #

    def _commit(self, moves: Dict[int, int]) -> float:
        global _DELTA_COMMITS
        _DELTA_COMMITS += 1
        cost, payload = self._candidate_cost(moves)
        for instance in moves.values():
            self._node_of_instance[instance] = -1
        for node, instance in moves.items():
            old = self.assignment[node]
            if self._node_of_instance[old] == node:
                self._node_of_instance[old] = -1
        for node, instance in moves.items():
            self.assignment[node] = instance
            self._node_of_instance[instance] = node
        if self.objective is Objective.LONGEST_LINK:
            touched, new_costs = payload
            if touched.size:
                self._edge_costs[touched] = new_costs
        else:
            # O(touched) commit: write the peeked scratch entries into
            # the committed relaxation state and replay the touched edge
            # costs; nothing is re-relaxed.  The scratch arrays still
            # hold this peek's values: the `_last_peek` memo guarantees
            # the payload came from the most recent peek, and only a
            # peek bumps the version.
            touched_nodes, touched_edges, new_level_max = payload
            finish = self._lp_finish
            argmax = self._lp_argmax
            cand_finish = self._cand_finish
            cand_argmax = self._cand_argmax
            for v in touched_nodes:
                finish[v] = cand_finish[v]
                argmax[v] = cand_argmax[v]
            ec = self._lp_ec
            for e, _, c in touched_edges:
                ec[e] = c
            asg = self._asg
            for node, instance in moves.items():
                asg[node] = instance
            if new_level_max:
                level_max = self._lp_level_max
                for lv, val in new_level_max.items():
                    level_max[lv] = val
                # O(1) invalidation of the lazy running maxima: prefixes
                # up to the window's low edge and suffixes past its high
                # edge are untouched and stay valid.
                lo = min(new_level_max)
                hi = max(new_level_max)
                if self._lp_prefix_len > lo:
                    self._lp_prefix_len = lo
                if self._lp_suffix_start < hi + 1:
                    self._lp_suffix_start = hi + 1
        self._cost = cost
        self._last_peek = None  # state advanced; cached peek no longer valid
        return cost

    def apply_swap(self, node_a: int, node_b: int) -> float:
        """Commit a swap; returns the new current cost."""
        return self._commit(self._swap_moves(node_a, node_b))

    def apply_relocate(self, node: int, instance: int) -> float:
        """Commit a relocation to a free instance; returns the new cost."""
        self._check_free(node, instance)
        return self._commit({int(node): int(instance)})

    def __repr__(self) -> str:
        return (
            f"DeltaEvaluator(objective={self.objective.value}, "
            f"cost={self._cost:.6f})"
        )


# --------------------------------------------------------------------------- #
# Parallel batch evaluation
# --------------------------------------------------------------------------- #

#: Minimum number of gathered cells (batch rows x edges) before a batch is
#: worth chunking across threads; below this, thread dispatch overhead
#: outweighs the work and the serial path wins.
PARALLEL_MIN_CELLS = 65_536

_EXECUTOR_LOCK = threading.Lock()
_EXECUTOR: Optional[ThreadPoolExecutor] = None
_EXECUTOR_WORKERS = 0

# Process-wide tallies of thread-parallel batch calls, aggregated across
# every ParallelEvaluator instance (evaluators are created per solve, so
# instance counters alone cannot feed session-lifetime telemetry).
_THREAD_COUNTER_LOCK = threading.Lock()
_THREAD_PARALLEL_CALLS = 0
_THREAD_SERIAL_CALLS = 0


def _count_thread_call(parallel: bool) -> None:
    global _THREAD_PARALLEL_CALLS, _THREAD_SERIAL_CALLS
    with _THREAD_COUNTER_LOCK:
        if parallel:
            _THREAD_PARALLEL_CALLS += 1
        else:
            _THREAD_SERIAL_CALLS += 1


def thread_parallel_counters() -> Tuple[int, int]:
    """Process-wide ``(parallel_calls, serial_calls)`` across all thread evaluators."""
    with _THREAD_COUNTER_LOCK:
        return _THREAD_PARALLEL_CALLS, _THREAD_SERIAL_CALLS


def thread_pool_size() -> int:
    """Current size of the shared evaluation thread pool (0 before first use)."""
    with _EXECUTOR_LOCK:
        return _EXECUTOR_WORKERS


def balanced_chunk_bounds(rows: int, chunks: int) -> List[Tuple[int, int]]:
    """Contiguous, balanced ``(start, stop)`` row ranges, at most ``chunks``.

    Shared by the thread and process evaluators so both split a batch
    identically — concatenating per-chunk results therefore reproduces the
    serial row order bit-for-bit regardless of the execution backend.
    """
    parts = min(chunks, rows)
    base, extra = divmod(rows, parts)
    bounds = []
    start = 0
    for k in range(parts):
        stop = start + base + (1 if k < extra else 0)
        bounds.append((start, stop))
        start = stop
    return bounds


def available_workers() -> int:
    """CPUs usable by this process (affinity-aware where supported, >= 1)."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - platforms without affinity
        return max(1, os.cpu_count() or 1)


def resolve_workers(workers: int | str | None) -> int:
    """Normalise a ``workers`` knob to a concrete worker count.

    Args:
        workers: ``None`` or ``"auto"`` for one worker per available CPU
            (:func:`available_workers`), an explicit positive integer, or a
            process-pool spec ``"procs"`` / ``"procs:auto"`` / ``"procs:N"``
            (see :func:`workers_spec`).

    Returns:
        The resolved worker count, always >= 1.

    Raises:
        ValueError: on a non-positive count or an unrecognised value.
    """
    if workers is None or workers == "auto":
        return available_workers()
    if isinstance(workers, str):
        return workers_spec(workers)[1]
    try:
        count = operator.index(workers)
    except TypeError as exc:
        raise ValueError(
            f"workers must be a positive int, 'auto', 'procs[:N]' or None, "
            f"got {workers!r}"
        ) from exc
    if count < 1:
        raise ValueError(f"workers must be >= 1, got {workers!r}")
    return count


def workers_spec(workers: int | str | None) -> Tuple[str, int]:
    """Parse the ``workers`` knob into an execution mode and worker count.

    The knob grammar, shared by :class:`~repro.solvers.base.SearchBudget`,
    ``AdvisorSession(eval_workers=...)`` and the CLI ``--eval-workers``:

    - ``None`` / ``"auto"`` / positive int — thread-parallel evaluation
      (mode ``"threads"``), counting like :func:`resolve_workers`.
    - ``"procs"`` / ``"procs:auto"`` — process-pool evaluation (mode
      ``"procs"``) with one worker per available CPU.
    - ``"procs:N"`` — process-pool evaluation with ``N`` workers.

    Returns:
        ``(mode, count)`` with ``mode`` in ``{"threads", "procs"}`` and
        ``count >= 1``.

    Raises:
        ValueError: on a malformed spec or non-positive count.
    """
    if isinstance(workers, str) and workers.startswith("procs"):
        rest = workers[len("procs"):]
        if rest in ("", ":auto"):
            return ("procs", available_workers())
        if rest.startswith(":"):
            try:
                count = int(rest[1:])
            except ValueError as exc:
                raise ValueError(
                    f"workers must be 'procs', 'procs:auto' or 'procs:N', "
                    f"got {workers!r}"
                ) from exc
            if count < 1:
                raise ValueError(f"workers must be >= 1, got {workers!r}")
            return ("procs", count)
        raise ValueError(
            f"workers must be 'procs', 'procs:auto' or 'procs:N', "
            f"got {workers!r}"
        )
    if isinstance(workers, str) and workers != "auto":
        raise ValueError(
            f"workers must be a positive int, 'auto', 'procs[:N]' or None, "
            f"got {workers!r}"
        )
    return ("threads", resolve_workers(workers))


def _shared_executor(workers: int) -> ThreadPoolExecutor:
    """The process-wide evaluation thread pool, grown to ``workers`` threads.

    One pool is shared by every :class:`ParallelEvaluator` (threads are
    cheap but not free, and evaluators are created per solve); the pool
    only ever grows, so a wider evaluator never deadlocks behind a
    narrower one's sizing.
    """
    global _EXECUTOR, _EXECUTOR_WORKERS
    with _EXECUTOR_LOCK:
        if _EXECUTOR is None or _EXECUTOR_WORKERS < workers:
            if _EXECUTOR is not None:
                _EXECUTOR.shutdown(wait=False)
            _EXECUTOR = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-eval",
            )
            _EXECUTOR_WORKERS = workers
        return _EXECUTOR


class ParallelEvaluator:
    """Multi-core batch evaluation on top of a :class:`CompiledProblem`.

    Splits the rows of an ``evaluate_batch`` assignment matrix into one
    contiguous chunk per worker and scores the chunks concurrently on a
    shared thread pool.  The batch kernels route every large gather
    through ``np.take`` and combine with ufuncs — both release the GIL
    under NumPy — so threads scale near-linearly on multi-core hosts
    without any shared-memory plumbing or fork-safety hazards.  Rows are
    evaluated independently by the same serial kernels, so results are
    bit-identical to :meth:`CompiledProblem.evaluate_batch` in any chunking.

    Batches below ``min_cells`` gathered cells (rows x edges), single-row
    batches, and ``workers=1`` evaluators take the serial path untouched,
    so small problems never pay dispatch overhead.  The
    ``parallel_calls`` / ``serial_calls`` counters record which path each
    call took.

    Args:
        problem: the compiled problem whose kernels do the scoring.
        workers: ``None`` / ``"auto"`` for one worker per available CPU,
            or an explicit positive count (see :func:`resolve_workers`).
        min_cells: serial-fallback cutoff in gathered cells
            (:data:`PARALLEL_MIN_CELLS` by default).
    """

    def __init__(self, problem: CompiledProblem,
                 workers: int | str | None = None,
                 min_cells: int = PARALLEL_MIN_CELLS):
        self.problem = problem
        self.workers = resolve_workers(workers)
        self.min_cells = max(0, operator.index(min_cells))
        self.parallel_calls = 0
        self.serial_calls = 0

    def _chunk_bounds(self, rows: int) -> List[Tuple[int, int]]:
        """Contiguous, balanced ``(start, stop)`` row ranges, one per worker."""
        return balanced_chunk_bounds(rows, self.workers)

    def evaluate_batch(self, assignments: np.ndarray,
                       objective: Objective) -> np.ndarray:
        """Evaluate a ``(k, n)`` assignment array across the worker pool.

        Bit-identical to :meth:`CompiledProblem.evaluate_batch` (which it
        delegates to per chunk — and entirely, for batches under the
        serial cutoff).

        Raises:
            ValueError: on a mis-shaped batch or unknown objective.
        """
        problem = self.problem
        assignments = np.asarray(assignments)
        if assignments.ndim != 2 or assignments.shape[1] != problem.num_nodes:
            raise ValueError(
                f"assignments must have shape (k, {problem.num_nodes})"
            )
        rows = assignments.shape[0]
        if (self.workers <= 1 or rows < 2
                or rows * max(1, problem.num_edges) < self.min_cells):
            self.serial_calls += 1
            _count_thread_call(parallel=False)
            return problem.evaluate_batch(assignments, objective)
        if objective is Objective.LONGEST_PATH:
            problem._level_groups()  # build lazy shared state before fan-out
        executor = _shared_executor(self.workers)
        futures = [
            executor.submit(problem.evaluate_batch,
                            assignments[start:stop], objective)
            for start, stop in self._chunk_bounds(rows)
        ]
        self.parallel_calls += 1
        _count_thread_call(parallel=True)
        return np.concatenate([future.result() for future in futures])

    def evaluate_plans(self, plans: Sequence[DeploymentPlan],
                       objective: Objective) -> np.ndarray:
        """Lower a sequence of plans once, then batch-evaluate in parallel."""
        if not plans:
            return np.empty(0)
        return self.evaluate_batch(self.problem.index_plans(plans), objective)

    def __repr__(self) -> str:
        return (
            f"ParallelEvaluator(workers={self.workers}, "
            f"min_cells={self.min_cells})"
        )


# --------------------------------------------------------------------------- #
# Shared compilation cache
# --------------------------------------------------------------------------- #

#: Default bound on cached compilations.  Streaming workloads push a fresh
#: cost matrix through the cache per revision; without a bound the identity
#: cache is a slow leak (each entry pins a CompiledProblem and its graph).
DEFAULT_COMPILE_CACHE_ENTRIES = 128


@dataclass(frozen=True)
class CompileCacheStats:
    """Counters of the process-wide compilation cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    size: int = 0
    max_entries: int = DEFAULT_COMPILE_CACHE_ENTRIES

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable snapshot (consumed by telemetry exporters)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "size": self.size,
            "max_entries": self.max_entries,
            "hit_rate": self.hit_rate,
        }


class _CompileCache:
    """Bounded LRU of shared compilations, keyed on object identity.

    Entries are keyed on ``(id(graph), id(costs))`` with weak validity
    checks (an id can be recycled after its object dies), hold the
    compiled problem strongly, and are dropped eagerly when their cost
    matrix is garbage collected — so the cache never outlives the data it
    indexes, and never grows beyond ``max_entries`` compilations even
    under a streaming workload that mints a new cost matrix per revision.
    """

    def __init__(self, max_entries: int = DEFAULT_COMPILE_CACHE_ENTRIES):
        self._lock = threading.RLock()
        self._max_entries = max_entries
        self._entries: "OrderedDict[Tuple[int, int], Tuple[weakref.ref, weakref.ref, CompiledProblem]]" = (
            OrderedDict()
        )
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    @staticmethod
    def _key(graph: CommunicationGraph, costs: CostMatrix) -> Tuple[int, int]:
        return (id(graph), id(costs))

    def _drop(self, key: Tuple[int, int]) -> None:
        """Finalizer hook: remove a dead cost matrix's entry (no eviction count)."""
        with self._lock:
            self._entries.pop(key, None)

    def _get_valid(self, key: Tuple[int, int], graph: CommunicationGraph,
                   costs: CostMatrix) -> Optional[CompiledProblem]:
        entry = self._entries.get(key)
        if entry is None:
            return None
        graph_ref, costs_ref, problem = entry
        if graph_ref() is not graph or costs_ref() is not costs:
            # Recycled id pair: the original owners died; discard the
            # stale entry instead of serving a wrong compilation.
            del self._entries[key]
            return None
        self._entries.move_to_end(key)
        return problem

    def peek(self, graph: CommunicationGraph,
             costs: CostMatrix) -> Optional[CompiledProblem]:
        """Cached compilation for the pair, without compiling or counting."""
        with self._lock:
            return self._get_valid(self._key(graph, costs), graph, costs)

    def get_or_compile(self, graph: CommunicationGraph,
                       costs: CostMatrix) -> CompiledProblem:
        """Return the cached lowering for ``(graph, costs)``, compiling on miss."""
        key = self._key(graph, costs)
        with self._lock:
            problem = self._get_valid(key, graph, costs)
            if problem is not None:
                self._hits += 1
                return problem
            self._misses += 1
        # Compile outside the lock: lowering is the expensive part, and the
        # advisor session already serialises same-instance compiles while
        # letting distinct instances compile concurrently.
        problem = CompiledProblem(graph, costs)
        with self._lock:
            raced = self._get_valid(key, graph, costs)
            if raced is not None:
                return raced
            self._insert(key, graph, costs, problem)
        return problem

    def _insert(self, key: Tuple[int, int], graph: CommunicationGraph,
                costs: CostMatrix, problem: CompiledProblem) -> None:
        self._entries[key] = (weakref.ref(graph), weakref.ref(costs), problem)
        weakref.finalize(costs, self._drop, key)
        while len(self._entries) > self._max_entries:
            self._entries.popitem(last=False)
            self._evictions += 1

    def rehome(self, problem: CompiledProblem,
               old_costs: Optional[CostMatrix],
               new_costs: CostMatrix) -> None:
        """Re-key a refreshed compilation from its old cost matrix to the new.

        Only compilations that were actually cached are re-keyed; a
        privately constructed ``CompiledProblem`` refreshing its costs
        does not enter the shared cache through the back door.
        """
        if old_costs is None:
            return
        with self._lock:
            old_key = self._key(problem.graph, old_costs)
            entry = self._entries.get(old_key)
            if entry is None or entry[2] is not problem:
                return
            del self._entries[old_key]
            self._insert(self._key(problem.graph, new_costs),
                         problem.graph, new_costs, problem)

    def stats(self) -> CompileCacheStats:
        """Snapshot the hit/miss/eviction counters and current size."""
        with self._lock:
            return CompileCacheStats(
                hits=self._hits, misses=self._misses,
                evictions=self._evictions, size=len(self._entries),
                max_entries=self._max_entries,
            )

    def configure(self, max_entries: Optional[int] = None,
                  reset_stats: bool = False) -> None:
        """Re-bound the cache (evicting LRU overflow) and/or reset counters."""
        with self._lock:
            if max_entries is not None:
                if max_entries < 1:
                    raise ValueError("max_entries must be >= 1")
                self._max_entries = max_entries
                while len(self._entries) > self._max_entries:
                    self._entries.popitem(last=False)
                    self._evictions += 1
            if reset_stats:
                self._hits = self._misses = self._evictions = 0

    def clear(self) -> None:
        """Drop every cached lowering (counters are kept)."""
        with self._lock:
            self._entries.clear()


_COMPILE_CACHE = _CompileCache()


def compile_problem(graph: CommunicationGraph, costs: CostMatrix) -> CompiledProblem:
    """Compile (or fetch a cached compilation of) a problem instance.

    Compilations are shared process-wide per ``(graph, costs)`` object
    pair; both objects are treated as immutable after construction, which
    makes sharing safe across solvers (the portfolio warms this cache once
    for all of its members).  The cache is a bounded LRU
    (:data:`DEFAULT_COMPILE_CACHE_ENTRIES` entries by default — see
    :func:`configure_compile_cache`), so long-lived streaming sessions
    cannot leak one compilation per cost revision; an evicted pair is
    simply recompiled on next use.
    """
    return _COMPILE_CACHE.get_or_compile(graph, costs)


def peek_compiled(graph: CommunicationGraph,
                  costs: CostMatrix) -> Optional[CompiledProblem]:
    """The cached compilation of a pair, or ``None`` — never compiles.

    Used by :meth:`repro.core.problem.DeploymentProblem.revise` to decide
    whether a cost revision can refresh an existing engine in place.
    """
    return _COMPILE_CACHE.peek(graph, costs)


def compile_cache_stats() -> CompileCacheStats:
    """Hit / miss / eviction counters of the process-wide compile cache."""
    return _COMPILE_CACHE.stats()


def configure_compile_cache(max_entries: Optional[int] = None,
                            reset_stats: bool = False) -> CompileCacheStats:
    """Adjust the compile cache bound and/or reset its counters.

    Shrinking the bound evicts least-recently-used compilations
    immediately.  Returns the stats after reconfiguration.
    """
    _COMPILE_CACHE.configure(max_entries=max_entries, reset_stats=reset_stats)
    return _COMPILE_CACHE.stats()
