"""Pairwise communication cost matrices (Definition 1 in the paper).

A :class:`CostMatrix` stores ``CL(i, j)`` for every ordered pair of allocated
instances.  Costs may be asymmetric and need not obey the triangle
inequality.  The matrix is usually built from raw latency samples collected
by one of the measurement schemes in :mod:`repro.netmeasure`, aggregated
under one of the latency metrics of Sect. 3.2 (mean, mean plus standard
deviation, or the 99th percentile).
"""

from __future__ import annotations

import enum
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

import numpy as np

from .clustering import cluster_costs
from .errors import InvalidCostMatrixError
from .types import InstanceId, Link


class LatencyMetric(enum.Enum):
    """How raw latency samples are summarised into a single link cost.

    Sect. 3.2 of the paper considers three candidate metrics and concludes
    experimentally (Sect. 6.4) that the mean is robust for the applications
    studied.
    """

    MEAN = "mean"
    MEAN_PLUS_STD = "mean_plus_std"
    P99 = "p99"

    def summarise(self, samples: Sequence[float]) -> float:
        """Collapse a list of round-trip samples into one cost value."""
        data = np.asarray(samples, dtype=float)
        if data.size == 0:
            raise InvalidCostMatrixError("cannot summarise an empty sample list")
        if self is LatencyMetric.MEAN:
            return float(data.mean())
        if self is LatencyMetric.MEAN_PLUS_STD:
            return float(data.mean() + data.std(ddof=0))
        return float(np.percentile(data, 99))


class CostMatrix:
    """Communication cost function ``CL`` over a set of allocated instances.

    The matrix is indexed by instance identifiers (arbitrary integers); an
    internal dense NumPy array holds the costs for fast vectorised queries.
    Diagonal entries are zero by convention (an instance talking to itself
    costs nothing), and the deployment plans produced by the library never
    use them because plans are injective.
    """

    def __init__(self, instance_ids: Sequence[InstanceId], matrix: np.ndarray):
        ids = list(instance_ids)
        if len(ids) != len(set(ids)):
            raise InvalidCostMatrixError("duplicate instance identifiers")
        array = np.asarray(matrix, dtype=float)
        if array.ndim != 2 or array.shape[0] != array.shape[1]:
            raise InvalidCostMatrixError("cost matrix must be square")
        if array.shape[0] != len(ids):
            raise InvalidCostMatrixError(
                "cost matrix size does not match number of instances"
            )
        off_diag = array[~np.eye(len(ids), dtype=bool)]
        if off_diag.size and (np.isnan(off_diag).any() or (off_diag < 0).any()):
            raise InvalidCostMatrixError("costs must be non-negative and finite")
        self._ids: Tuple[InstanceId, ...] = tuple(ids)
        self._index: Dict[InstanceId, int] = {inst: k for k, inst in enumerate(ids)}
        self._matrix = array.copy()
        np.fill_diagonal(self._matrix, 0.0)

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #

    @classmethod
    def from_samples(cls, samples: Mapping[Link, Sequence[float]],
                     metric: LatencyMetric = LatencyMetric.MEAN,
                     instance_ids: Sequence[InstanceId] | None = None,
                     fill_missing: float | None = None) -> "CostMatrix":
        """Build a cost matrix from per-link latency samples.

        Args:
            samples: mapping from ordered instance pair to raw RTT samples.
            metric: how samples are summarised into a single cost.
            instance_ids: the instances to include; inferred from the sample
                keys when omitted.
            fill_missing: value used for links with no samples.  When
                ``None``, a missing directed link falls back to the reverse
                direction if available and otherwise raises.

        Raises:
            InvalidCostMatrixError: if a link has no samples and no fallback.
        """
        if instance_ids is None:
            inferred = sorted({i for pair in samples for i in pair})
            instance_ids = inferred
        ids = list(instance_ids)
        index = {inst: k for k, inst in enumerate(ids)}
        n = len(ids)
        matrix = np.zeros((n, n), dtype=float)
        summarised: Dict[Link, float] = {
            pair: metric.summarise(obs) for pair, obs in samples.items() if len(obs) > 0
        }
        for a in ids:
            for b in ids:
                if a == b:
                    continue
                if (a, b) in summarised:
                    value = summarised[(a, b)]
                elif (b, a) in summarised:
                    value = summarised[(b, a)]
                elif fill_missing is not None:
                    value = fill_missing
                else:
                    raise InvalidCostMatrixError(
                        f"no latency samples for link ({a}, {b})"
                    )
                matrix[index[a], index[b]] = value
        return cls(ids, matrix)

    @classmethod
    def from_function(cls, instance_ids: Sequence[InstanceId],
                      cost_fn) -> "CostMatrix":
        """Build a matrix by evaluating ``cost_fn(i, j)`` on every ordered pair."""
        ids = list(instance_ids)
        n = len(ids)
        matrix = np.zeros((n, n), dtype=float)
        for a_idx, a in enumerate(ids):
            for b_idx, b in enumerate(ids):
                if a_idx != b_idx:
                    matrix[a_idx, b_idx] = float(cost_fn(a, b))
        return cls(ids, matrix)

    @classmethod
    def symmetric_from_upper(cls, instance_ids: Sequence[InstanceId],
                             upper: Mapping[Link, float]) -> "CostMatrix":
        """Build a symmetric matrix given costs for unordered pairs."""
        ids = list(instance_ids)
        index = {inst: k for k, inst in enumerate(ids)}
        n = len(ids)
        matrix = np.zeros((n, n), dtype=float)
        for (a, b), value in upper.items():
            matrix[index[a], index[b]] = value
            matrix[index[b], index[a]] = value
        return cls(ids, matrix)

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #

    @property
    def instance_ids(self) -> Tuple[InstanceId, ...]:
        """Instances covered by this matrix, in index order."""
        return self._ids

    @property
    def num_instances(self) -> int:
        """Number of instances."""
        return len(self._ids)

    def as_array(self) -> np.ndarray:
        """Dense copy of the underlying cost array."""
        return self._matrix.copy()

    def index_of(self, instance: InstanceId) -> int:
        """Dense-array index of an instance identifier."""
        try:
            return self._index[instance]
        except KeyError as exc:
            raise InvalidCostMatrixError(f"unknown instance {instance}") from exc

    def cost(self, i: InstanceId, j: InstanceId) -> float:
        """``CL(i, j)``: the cost of the directed link from ``i`` to ``j``."""
        return float(self._matrix[self.index_of(i), self.index_of(j)])

    def link_costs(self, include_diagonal: bool = False) -> np.ndarray:
        """All directed link costs as a flat array (diagonal excluded by default)."""
        if include_diagonal:
            return self._matrix.flatten()
        mask = ~np.eye(self.num_instances, dtype=bool)
        return self._matrix[mask]

    def links_sorted_by_cost(self) -> List[Tuple[Link, float]]:
        """All directed links sorted ascending by cost (ties broken by ids)."""
        entries = [
            ((a, b), float(self._matrix[ai, bi]))
            for ai, a in enumerate(self._ids)
            for bi, b in enumerate(self._ids)
            if ai != bi
        ]
        entries.sort(key=lambda item: (item[1], item[0]))
        return entries

    def max_cost(self) -> float:
        """Largest off-diagonal cost."""
        return float(self.link_costs().max())

    def min_cost(self) -> float:
        """Smallest off-diagonal cost."""
        return float(self.link_costs().min())

    def mean_cost(self) -> float:
        """Average off-diagonal cost."""
        return float(self.link_costs().mean())

    def distinct_costs(self, round_to: float | None = None) -> np.ndarray:
        """Sorted distinct off-diagonal cost values, optionally rounded."""
        values = self.link_costs()
        if round_to is not None and round_to > 0:
            values = np.round(values / round_to) * round_to
        return np.unique(values)

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #

    def to_dict(self) -> Dict[str, list]:
        """JSON-serializable representation.

        Costs are emitted as plain Python floats; ``json`` round-trips
        float64 values exactly (``repr`` produces the shortest string that
        parses back to the same bits), so a serialized matrix reproduces
        bit-identical deployment costs.
        """
        return {
            "instance_ids": list(self._ids),
            "matrix": self._matrix.tolist(),
        }

    @classmethod
    def from_dict(cls, payload) -> "CostMatrix":
        """Rebuild a matrix from :meth:`to_dict` output."""
        try:
            ids = payload["instance_ids"]
            matrix = payload["matrix"]
        except (KeyError, TypeError) as exc:
            raise InvalidCostMatrixError(
                "cost matrix payload must contain 'instance_ids' and 'matrix'"
            ) from exc
        return cls(ids, np.asarray(matrix, dtype=float))

    # ------------------------------------------------------------------ #
    # Transformations
    # ------------------------------------------------------------------ #

    def submatrix(self, instances: Iterable[InstanceId]) -> "CostMatrix":
        """Restrict the matrix to a subset of instances (preserving order given)."""
        subset = list(instances)
        indices = [self.index_of(i) for i in subset]
        return CostMatrix(subset, self._matrix[np.ix_(indices, indices)])

    def clustered(self, k: int | None, round_to: float | None = 0.01) -> "CostMatrix":
        """Return a copy whose off-diagonal costs are replaced by cluster means.

        This implements the cost-clustering heuristic of Sect. 6.3: the CP
        solver iterates over distinct cost values, so coarsening them reduces
        the number of iterations at the price of approximating the objective.
        """
        if k is None and (round_to is None or round_to <= 0):
            return CostMatrix(self._ids, self._matrix)
        mask = ~np.eye(self.num_instances, dtype=bool)
        values = self._matrix[mask]
        clustered_values = cluster_costs(values, k, round_to=round_to)
        matrix = self._matrix.copy()
        matrix[mask] = clustered_values
        return CostMatrix(self._ids, matrix)

    def normalized(self) -> "CostMatrix":
        """Scale costs so the off-diagonal vector has unit Euclidean norm.

        The measurement-accuracy experiment (Fig. 4) normalises latency
        vectors before comparing methodologies, because a uniform over- or
        under-estimation factor does not change the chosen deployment.
        """
        norm = float(np.linalg.norm(self.link_costs()))
        if norm == 0:
            return CostMatrix(self._ids, self._matrix)
        return CostMatrix(self._ids, self._matrix / norm)

    def symmetrized(self) -> "CostMatrix":
        """Return a symmetric matrix using the max of the two directions."""
        matrix = np.maximum(self._matrix, self._matrix.T)
        return CostMatrix(self._ids, matrix)

    def relabeled(self, mapping: Mapping[InstanceId, InstanceId]) -> "CostMatrix":
        """Return a copy with instance identifiers replaced through ``mapping``."""
        new_ids = [mapping[i] for i in self._ids]
        return CostMatrix(new_ids, self._matrix)

    def __repr__(self) -> str:
        return (
            f"CostMatrix(instances={self.num_instances}, "
            f"min={self.min_cost():.4f}, max={self.max_cost():.4f})"
        )
