"""The ClouDiA deployment advisor: the end-to-end pipeline of Fig. 3.

Given a communication graph and an optimisation objective, the advisor

1. **allocates** instances from the cloud (over-allocating by a configurable
   ratio so there are spare instances to discard),
2. **measures** pairwise latencies with one of the measurement schemes of
   Sect. 5,
3. **searches** for a deployment plan minimising the chosen objective with
   one of the solvers of Sect. 4, and
4. **terminates** the over-allocated instances the plan does not use,

returning a report with the plan, the baseline (default) plan, predicted
costs and timing information.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Mapping, Optional, Sequence

from ..cloud.provider import SimulatedCloud
from ..netmeasure.estimator import MeasurementResult
from ..netmeasure.staged import StagedMeasurement
from ..netmeasure.token_passing import TokenPassingMeasurement
from ..netmeasure.uncoordinated import UncoordinatedMeasurement
from ..solvers.base import DeploymentSolver, SearchBudget, SolverResult, default_plan
from ..solvers.registry import default_registry
from .communication_graph import CommunicationGraph
from .cost_matrix import CostMatrix, LatencyMetric
from .deployment import DeploymentPlan
from .errors import AllocationError, ClouDiAError
from .objectives import Objective, deployment_cost, improvement_ratio
from .problem import DeploymentProblem, PlacementConstraints
from .types import InstanceId


@dataclass(frozen=True)
class MeasurementConfig:
    """How the advisor measures pairwise latencies.

    Attributes:
        scheme: ``"staged"`` (default, what ClouDiA uses), ``"uncoordinated"``
            or ``"token-passing"``.
        target_samples_per_link: samples to collect per directed link.
        max_duration_ms: hard cap on simulated measurement time.
        message_bytes: probe payload size, matched to the application.
        samples_per_stage: the staged scheme's ``Ks`` parameter.
    """

    scheme: str = "staged"
    target_samples_per_link: int = 10
    max_duration_ms: Optional[float] = None
    message_bytes: int = 1024
    samples_per_stage: int = 10

    def build_scheme(self, seed: int | None = None):
        """Instantiate the configured measurement scheme."""
        if self.scheme == "staged":
            return StagedMeasurement(message_bytes=self.message_bytes, seed=seed,
                                     samples_per_stage=self.samples_per_stage)
        if self.scheme == "uncoordinated":
            return UncoordinatedMeasurement(message_bytes=self.message_bytes, seed=seed)
        if self.scheme == "token-passing":
            return TokenPassingMeasurement(message_bytes=self.message_bytes, seed=seed)
        raise ClouDiAError(f"unknown measurement scheme {self.scheme!r}")


@dataclass(frozen=True)
class AdvisorConfig:
    """Configuration of one advisor run.

    Attributes:
        objective: which deployment cost function to minimise.
        over_allocation_ratio: fraction of extra instances to allocate beyond
            the number of application nodes (the paper uses 10 %).
        metric: latency metric used to summarise probe samples into costs.
        solver: deployment solver — either an instantiated
            :class:`~repro.solvers.base.DeploymentSolver`, a registry key
            string (resolved through
            :data:`~repro.solvers.registry.default_registry` together with
            ``solver_config``), or ``None`` for the paper default of the
            objective (CP for longest link, MIP branch and bound for
            longest path).
        solver_config: configuration passed to the registry when ``solver``
            is a string key or ``None``; the seed is filled in from
            ``seed`` when the solver accepts one and the config does not
            set it.
        solver_time_limit_s: time budget handed to the solver.
        measurement: measurement configuration.
        constraints: optional placement constraints applied to the search.
        terminate_unused: whether to terminate the over-allocated instances
            the plan does not use (step 4 of Fig. 3).  Experiments that still
            need to evaluate the *default* deployment afterwards set this to
            ``False`` and terminate later themselves.
        seed: seed shared by measurement and search.
    """

    objective: Objective = Objective.LONGEST_LINK
    over_allocation_ratio: float = 0.10
    metric: LatencyMetric = LatencyMetric.MEAN
    solver: Optional[DeploymentSolver | str] = None
    solver_config: Mapping[str, object] = field(default_factory=dict)
    solver_time_limit_s: float = 5.0
    measurement: MeasurementConfig = field(default_factory=MeasurementConfig)
    constraints: Optional[PlacementConstraints] = None
    terminate_unused: bool = True
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        # Detected here rather than at search time: an advisor run pays for
        # allocation and measurement before it ever builds the solver, so a
        # statically-detectable misconfiguration must not survive that long.
        if isinstance(self.solver, DeploymentSolver) and self.solver_config:
            raise ValueError(
                "solver_config has no effect when solver is an instantiated "
                "DeploymentSolver; configure the instance directly or pass "
                "a registry key instead"
            )

    def build_solver(self) -> DeploymentSolver:
        """Instantiate the configured (or default) solver via the registry.

        ``solver=None`` and ``solver="auto"`` both resolve to the paper
        default for the configured objective.
        """
        if isinstance(self.solver, DeploymentSolver):
            return self.solver
        key = default_registry.resolve(self.solver, self.objective)
        config = default_registry.seeded_config(key, self.seed,
                                                self.solver_config)
        return default_registry.make(key, **config)


@dataclass(frozen=True)
class AdvisorReport:
    """Everything ClouDiA did and recommends for one application."""

    plan: DeploymentPlan
    default_plan: DeploymentPlan
    objective: Objective
    allocated_instances: tuple
    terminated_instances: tuple
    measurement: MeasurementResult
    cost_matrix: CostMatrix
    solver_result: SolverResult
    predicted_cost: float
    default_predicted_cost: float

    @property
    def predicted_improvement(self) -> float:
        """Predicted relative cost reduction of the plan over the default."""
        return improvement_ratio(self.default_predicted_cost, self.predicted_cost)

    @property
    def measurement_time_ms(self) -> float:
        """Simulated time spent measuring pairwise latencies."""
        return self.measurement.elapsed_ms

    @property
    def search_time_s(self) -> float:
        """Wall-clock time spent searching for the deployment plan."""
        return self.solver_result.solve_time_s


class ClouDiA:
    """The deployment advisor.

    Args:
        cloud: the (simulated) public cloud to allocate from.
        config: advisor configuration; a sensible default is used if omitted.
    """

    def __init__(self, cloud: SimulatedCloud, config: AdvisorConfig | None = None):
        self.cloud = cloud
        self.config = config if config is not None else AdvisorConfig()

    # ------------------------------------------------------------------ #

    def recommend(self, graph: CommunicationGraph,
                  max_instances: int | None = None) -> AdvisorReport:
        """Run the full pipeline of Fig. 3 for one application.

        Args:
            graph: the application's communication graph.
            max_instances: cap on the total number of instances to allocate;
                defaults to ``ceil((1 + over_allocation_ratio) * |V|)``.

        Returns:
            An :class:`AdvisorReport`; the over-allocated instances the plan
            does not use have already been terminated.
        """
        return self.recommend_on_instances(graph,
                                           self.allocate(graph, max_instances))

    def recommend_on_instances(self, graph: CommunicationGraph,
                               instance_ids: Sequence[InstanceId]) -> AdvisorReport:
        """Run measurement + search + termination on already-allocated instances."""
        ids: List[InstanceId] = list(instance_ids)
        if len(ids) < graph.num_nodes:
            raise AllocationError(
                f"{graph.num_nodes} nodes cannot be deployed on {len(ids)} instances"
            )

        measurement = self.measure(ids)
        costs = measurement.to_cost_matrix(metric=self.config.metric)
        solver_result = self.search(graph, costs)

        baseline = default_plan(graph, costs)
        baseline_cost = deployment_cost(baseline, graph, costs, self.config.objective)

        unused = solver_result.plan.unused_instances(ids)
        if self.config.terminate_unused:
            self.cloud.terminate(unused)

        return AdvisorReport(
            plan=solver_result.plan,
            default_plan=baseline,
            objective=self.config.objective,
            allocated_instances=tuple(ids),
            terminated_instances=tuple(unused),
            measurement=measurement,
            cost_matrix=costs,
            solver_result=solver_result,
            predicted_cost=solver_result.cost,
            default_predicted_cost=baseline_cost,
        )

    # ------------------------------------------------------------------ #
    # Individual pipeline stages (also usable on their own)
    # ------------------------------------------------------------------ #

    def allocate(self, graph: CommunicationGraph,
                 max_instances: int | None = None) -> List[InstanceId]:
        """Stage 1 of Fig. 3: allocate instances with over-allocation.

        The single implementation of the over-allocation sizing policy —
        the CLI's ``make-problem`` command reuses it so the sizing cannot
        drift from :meth:`recommend`.
        """
        num_nodes = graph.num_nodes
        desired = int(round((1.0 + self.config.over_allocation_ratio) * num_nodes))
        desired = max(desired, num_nodes)
        if max_instances is not None:
            if max_instances < num_nodes:
                raise AllocationError(
                    f"max_instances={max_instances} is below the number of "
                    f"application nodes ({num_nodes})"
                )
            desired = min(desired, max_instances)
        return [instance.instance_id
                for instance in self.cloud.allocate(desired)]

    def measure(self, instance_ids: Sequence[InstanceId]) -> MeasurementResult:
        """Stage 2 of Fig. 3: measure pairwise latencies."""
        scheme = self.config.measurement.build_scheme(seed=self.config.seed)
        return scheme.measure(
            self.cloud, list(instance_ids),
            target_samples_per_link=self.config.measurement.target_samples_per_link,
            max_duration_ms=self.config.measurement.max_duration_ms,
        )

    def search(self, graph: CommunicationGraph, costs: CostMatrix) -> SolverResult:
        """Stage 3 of Fig. 3: search for a low-cost deployment plan."""
        problem = DeploymentProblem(
            graph, costs, objective=self.config.objective,
            constraints=self.config.constraints,
        )
        solver = self.config.build_solver()
        budget = SearchBudget.seconds(self.config.solver_time_limit_s)
        return solver.solve(problem, budget=budget)
