"""Core abstractions of the ClouDiA deployment advisor."""

from .clustering import ClusteringResult, cluster_costs, kmeans_1d
from .communication_graph import CommunicationGraph, augment_with_dummy_nodes
from .cost_matrix import CostMatrix, LatencyMetric
from .deployment import DeploymentPlan
from .evaluation import (
    CompileCacheStats,
    CompiledConstraints,
    CompiledProblem,
    DeltaEvaluator,
    IndexedPlan,
    ParallelEvaluator,
    available_workers,
    compile_cache_stats,
    compile_problem,
    configure_compile_cache,
    peek_compiled,
    resolve_workers,
)
from .errors import (
    AllocationError,
    BudgetExhaustedError,
    ClouDiAError,
    InfeasibleProblemError,
    InvalidCostMatrixError,
    InvalidDeploymentError,
    InvalidGraphError,
    MeasurementError,
    SolverError,
)
from .problem import (
    PROBLEM_SCHEMA_VERSION,
    DeploymentProblem,
    PlacementConstraints,
)
from .objectives import (
    CriticalElement,
    Objective,
    critical_path,
    deployment_cost,
    improvement_ratio,
    longest_link_cost,
    longest_path_cost,
    worst_link,
)

__all__ = [
    "AllocationError",
    "BudgetExhaustedError",
    "ClouDiAError",
    "ClusteringResult",
    "CommunicationGraph",
    "CompileCacheStats",
    "CompiledConstraints",
    "CompiledProblem",
    "CostMatrix",
    "CriticalElement",
    "DeltaEvaluator",
    "DeploymentPlan",
    "DeploymentProblem",
    "IndexedPlan",
    "InfeasibleProblemError",
    "InvalidCostMatrixError",
    "InvalidDeploymentError",
    "InvalidGraphError",
    "LatencyMetric",
    "MeasurementError",
    "Objective",
    "PROBLEM_SCHEMA_VERSION",
    "ParallelEvaluator",
    "PlacementConstraints",
    "SolverError",
    "augment_with_dummy_nodes",
    "available_workers",
    "cluster_costs",
    "compile_cache_stats",
    "compile_problem",
    "configure_compile_cache",
    "critical_path",
    "deployment_cost",
    "improvement_ratio",
    "kmeans_1d",
    "longest_link_cost",
    "longest_path_cost",
    "peek_compiled",
    "resolve_workers",
    "worst_link",
]
