"""Exception hierarchy for the ClouDiA reproduction.

Every error raised by the library derives from :class:`ClouDiAError` so that
callers can catch library-specific failures without masking programming
errors such as ``TypeError`` or ``KeyError`` raised by incorrect usage.
"""

from __future__ import annotations


class ClouDiAError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class InvalidGraphError(ClouDiAError):
    """Raised when a communication graph is malformed.

    Examples include duplicate nodes, edges referring to unknown nodes,
    self-loops, or requesting a longest-path objective on a cyclic graph.
    """


class InvalidDeploymentError(ClouDiAError):
    """Raised when a deployment plan is not a valid injective mapping."""


class InvalidCostMatrixError(ClouDiAError):
    """Raised when a cost matrix is malformed (wrong shape, negative costs)."""


class AllocationError(ClouDiAError):
    """Raised when the simulated cloud cannot satisfy an allocation request."""


class MeasurementError(ClouDiAError):
    """Raised when a network measurement scheme is misconfigured or fails."""


class SolverError(ClouDiAError):
    """Raised when a deployment solver is misconfigured or fails internally."""


class StoreError(ClouDiAError):
    """Raised when the durable SQLite result/history store fails.

    Wraps ``sqlite3`` failures on the *write* paths (schema migration,
    result inserts, history recording, eviction); read paths degrade to
    cache misses instead, keeping the store an accelerator rather than a
    correctness dependency.
    """


class InfeasibleProblemError(SolverError):
    """Raised when a node deployment problem admits no feasible deployment.

    This can only happen when there are fewer instances than application
    nodes, since the instance graph is complete and any injection is feasible
    otherwise.
    """


class BudgetExhaustedError(SolverError):
    """Raised when a solver cannot produce any solution within its budget."""
