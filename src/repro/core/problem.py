"""First-class node-deployment problem instances.

The paper frames ClouDiA as a *service* (Sects. 3 and 6): a tenant hands the
advisor a communication graph together with measured link costs and receives
a deployment plan back.  :class:`DeploymentProblem` is the request-side half
of that contract — a frozen, validated value object bundling

* the application :class:`~repro.core.communication_graph.CommunicationGraph`,
* the measured :class:`~repro.core.cost_matrix.CostMatrix` over allocated
  instances,
* the :class:`~repro.core.objectives.Objective` to minimise,
* optional :class:`PlacementConstraints` (pinned and forbidden placements),
* free-form JSON-serializable metadata (tenant name, template, provenance).

A problem owns its validation (enough instances, acyclicity for the
longest-path objective, consistent constraints) so solvers no longer
re-check the same invariants, and it lazily exposes the shared
:class:`~repro.core.evaluation.CompiledProblem` through :meth:`compiled`,
so every consumer of one problem object reuses a single lowering.

Problems serialize to plain dictionaries (:meth:`to_dict` /
:meth:`from_dict`) so a full solving request can leave the process as JSON
and be replayed elsewhere — the basis of the CLI's ``solve`` /
``solve-batch`` commands and the batch advisor session in
:mod:`repro.api`.
"""

from __future__ import annotations

import hashlib
from types import MappingProxyType
from typing import Any, Dict, FrozenSet, Iterable, List, Mapping, Optional

import numpy as np

from .communication_graph import CommunicationGraph
from .cost_matrix import CostMatrix
from .deployment import DeploymentPlan, provider_order_plan
from .errors import (
    ClouDiAError,
    InfeasibleProblemError,
    InvalidDeploymentError,
    InvalidGraphError,
)
from .evaluation import (
    CompiledConstraints,
    CompiledProblem,
    compile_problem,
    peek_compiled,
)
from .objectives import Objective
from .types import InstanceId, NodeId

#: Version tag embedded in every serialized problem payload so future
#: schema changes can stay backwards compatible.
PROBLEM_SCHEMA_VERSION = 1


class PlacementConstraints:
    """Optional per-node placement restrictions of a deployment problem.

    Two kinds of constraints are supported:

    * *pinned* — a node **must** run on a specific instance (e.g. a
      component co-located with persistent state);
    * *forbidden* — a node must **not** run on certain instances (e.g.
      instances in a failure domain the component must avoid).

    Constraints are enforced *natively*: every built-in solver searches
    only the allowed region, drawing candidates and moves from the
    compiled view this class lowers to (:meth:`compile`, cached per
    problem by
    :meth:`~repro.core.problem.DeploymentProblem.compiled_constraints`).
    The matching-based :meth:`repair` survives as a verified fallback the
    base :class:`~repro.solvers.base.DeploymentSolver` applies only for
    solvers that do not declare native support (e.g. the exact solvers'
    ``use_engine=False`` reference paths); telemetry records whenever it
    fires.
    """

    __slots__ = ("_pinned", "_forbidden")

    def __init__(self, pinned: Optional[Mapping[NodeId, InstanceId]] = None,
                 forbidden: Optional[Mapping[NodeId, Iterable[InstanceId]]] = None):
        pins: Dict[NodeId, InstanceId] = dict(pinned or {})
        if len(set(pins.values())) != len(pins):
            raise InvalidDeploymentError(
                "pinned placements must be injective: two nodes pinned to "
                "the same instance"
            )
        bans: Dict[NodeId, FrozenSet[InstanceId]] = {
            node: frozenset(instances)
            for node, instances in (forbidden or {}).items()
            if instances
        }
        for node, instance in pins.items():
            if instance in bans.get(node, frozenset()):
                raise InvalidDeploymentError(
                    f"node {node} is pinned to instance {instance} but that "
                    f"instance is also forbidden for it"
                )
        self._pinned = pins
        self._forbidden = bans

    # ------------------------------------------------------------------ #

    @property
    def pinned(self) -> Mapping[NodeId, InstanceId]:
        """Read-only view of the pinned ``node -> instance`` placements."""
        return MappingProxyType(self._pinned)

    @property
    def forbidden(self) -> Mapping[NodeId, FrozenSet[InstanceId]]:
        """Read-only view of the forbidden ``node -> {instances}`` sets."""
        return MappingProxyType(self._forbidden)

    @property
    def is_empty(self) -> bool:
        """``True`` when no constraint is present."""
        return not self._pinned and not self._forbidden

    def allows(self, node: NodeId, instance: InstanceId) -> bool:
        """Whether ``node`` may be placed on ``instance``."""
        pin = self._pinned.get(node)
        if pin is not None:
            return instance == pin
        return instance not in self._forbidden.get(node, frozenset())

    def validate(self, graph: CommunicationGraph, costs: CostMatrix) -> None:
        """Check the constraints against a concrete problem instance."""
        known_instances = set(costs.instance_ids)
        for node, instance in self._pinned.items():
            if not graph.has_node(node):
                raise InvalidDeploymentError(
                    f"constraint pins unknown node {node}"
                )
            if instance not in known_instances:
                raise InvalidDeploymentError(
                    f"node {node} is pinned to unknown instance {instance}"
                )
        for node, instances in self._forbidden.items():
            if not graph.has_node(node):
                raise InvalidDeploymentError(
                    f"constraint forbids instances for unknown node {node}"
                )
            unknown = instances - known_instances
            if unknown:
                raise InvalidDeploymentError(
                    f"node {node} forbids unknown instance(s) "
                    f"{sorted(unknown)[:5]}"
                )
            allowed = known_instances - instances
            if self._pinned.get(node) is None and not allowed:
                raise InfeasibleProblemError(
                    f"node {node} has no allowed instance left"
                )
        self._check_jointly_feasible(graph, costs)

    def _check_jointly_feasible(self, graph: CommunicationGraph,
                                costs: CostMatrix) -> None:
        """Fail fast on constraints that are only *jointly* infeasible.

        Per-node checks miss e.g. three nodes each restricted to the same
        single instance; without this, the infeasibility would surface only
        after a solver burnt its whole budget (in the repair step).  The
        unconstrained nodes accept any instance, so joint feasibility
        reduces to an injective matching of the forbidden-constrained,
        non-pinned nodes into their allowed non-pinned instances.
        """
        pinned_targets = set(self._pinned.values())
        constrained = [
            node for node in sorted(self._forbidden)
            if node not in self._pinned
        ]
        if not constrained:
            return
        candidates = [i for i in costs.instance_ids
                      if i not in pinned_targets]
        from scipy.optimize import linear_sum_assignment

        if len(candidates) < len(constrained):
            raise InfeasibleProblemError(
                "constraints leave fewer unpinned instances than "
                "constrained nodes"
            )
        allowed = np.ones((len(constrained), len(candidates)))
        for row, node in enumerate(constrained):
            forbidden = self._forbidden[node]
            for col, instance in enumerate(candidates):
                if instance not in forbidden:
                    allowed[row, col] = 0.0
        rows, cols = linear_sum_assignment(allowed)
        if allowed[rows, cols].max() > 0:
            raise InfeasibleProblemError(
                "placement constraints are jointly infeasible: no "
                "assignment places every constrained node on an allowed "
                "instance"
            )

    def violations(self, plan: DeploymentPlan) -> List[str]:
        """Human-readable list of constraint violations of ``plan``."""
        problems: List[str] = []
        for node, instance in self._pinned.items():
            actual = plan.instance_for(node)
            if actual != instance:
                problems.append(
                    f"node {node} must run on instance {instance}, "
                    f"plan places it on {actual}"
                )
        for node, instances in self._forbidden.items():
            actual = plan.instance_for(node)
            if actual in instances:
                problems.append(
                    f"node {node} is placed on forbidden instance {actual}"
                )
        return problems

    def satisfied_by(self, plan: DeploymentPlan) -> bool:
        """Whether ``plan`` honours every constraint."""
        return not self.violations(plan)

    def compile(self, problem: CompiledProblem) -> CompiledConstraints:
        """Lower the constraints onto a compiled problem's index space.

        Produces the boolean allowed mask the constraint-aware solvers
        search with: forbidden pairs are cleared, a pinned node's row
        becomes the one-hot of its pin, and the pinned column is cleared
        for every other node (the pin occupies that instance in any
        feasible plan).  Prefer
        :meth:`DeploymentProblem.compiled_constraints`, which caches the
        result per problem.
        """
        mask = np.ones((problem.num_nodes, problem.num_instances), dtype=bool)
        for node, instances in self._forbidden.items():
            row = problem.node_idx(node)
            for instance in instances:
                mask[row, problem.instance_idx(instance)] = False
        for node, instance in self._pinned.items():
            row = problem.node_idx(node)
            column = problem.instance_idx(instance)
            mask[:, column] = False
            mask[row, :] = False
            mask[row, column] = True
        return CompiledConstraints(problem, mask)

    def repair(self, plan: DeploymentPlan,
               instance_ids: Iterable[InstanceId]) -> DeploymentPlan:
        """Return the closest plan to ``plan`` that satisfies the constraints.

        Pins are satisfied first (swapping with the current occupant of the
        pinned instance, or relocating onto it when free).  If forbidden
        placements remain, the non-pinned nodes are re-assigned with a
        minimum-cost bipartite matching over their allowed instances in
        which keeping a node where it already is costs nothing — so the
        repair changes as few placements as possible, and it succeeds on
        *every* feasible instance (unlike single swaps / relocations, which
        cannot express multi-node reassignment chains).

        Raises:
            InfeasibleProblemError: when no assignment of the non-pinned
                nodes to allowed instances exists.
        """
        mapping = plan.as_dict()
        inverse = {instance: node for node, instance in mapping.items()}
        for node, instance in sorted(self._pinned.items()):
            current = mapping[node]
            if current == instance:
                continue
            occupant = inverse.get(instance)
            if occupant is not None:
                mapping[occupant] = current
                inverse[current] = occupant
            else:
                del inverse[current]
            mapping[node] = instance
            inverse[instance] = node

        repaired = DeploymentPlan(mapping)
        if self.satisfied_by(repaired):
            return repaired
        return self._rematch(mapping, instance_ids)

    def _rematch(self, mapping: Dict[NodeId, InstanceId],
                 instance_ids: Iterable[InstanceId]) -> DeploymentPlan:
        """Re-assign the non-pinned nodes with a minimum-change matching."""
        from scipy.optimize import linear_sum_assignment

        pinned_targets = set(self._pinned.values())
        free_nodes = [n for n in sorted(mapping) if n not in self._pinned]
        candidates = [i for i in instance_ids if i not in pinned_targets]
        if len(candidates) < len(free_nodes):
            raise InfeasibleProblemError(
                "cannot repair plan: fewer unpinned instances than "
                "unpinned nodes"
            )
        # Forbidden pairs cost more than any feasible full assignment can,
        # so the optimum uses one iff no feasible assignment exists.
        forbidden_cost = float(len(free_nodes) + 1)
        cost = np.ones((len(free_nodes), len(candidates)))
        for row, node in enumerate(free_nodes):
            for col, instance in enumerate(candidates):
                if not self.allows(node, instance):
                    cost[row, col] = forbidden_cost
                elif mapping[node] == instance:
                    cost[row, col] = 0.0
        rows, cols = linear_sum_assignment(cost)
        if cost[rows, cols].max() >= forbidden_cost:
            raise InfeasibleProblemError(
                "cannot repair plan: no assignment of the unpinned nodes "
                "to allowed instances exists"
            )
        repaired: Dict[NodeId, InstanceId] = dict(self._pinned)
        for row, col in zip(rows, cols):
            repaired[free_nodes[row]] = candidates[col]
        for node, instance in mapping.items():
            repaired.setdefault(node, instance)
        return DeploymentPlan(repaired)

    # ------------------------------------------------------------------ #

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable representation."""
        return {
            "pinned": [[node, instance]
                       for node, instance in sorted(self._pinned.items())],
            "forbidden": [[node, sorted(instances)]
                          for node, instances in sorted(self._forbidden.items())],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "PlacementConstraints":
        """Rebuild constraints from :meth:`to_dict` output."""
        return cls(
            pinned={node: instance for node, instance in payload.get("pinned", [])},
            forbidden={node: instances
                       for node, instances in payload.get("forbidden", [])},
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PlacementConstraints):
            return NotImplemented
        return (self._pinned == other._pinned
                and self._forbidden == other._forbidden)

    def __hash__(self) -> int:
        return hash((
            frozenset(self._pinned.items()),
            frozenset(self._forbidden.items()),
        ))

    def __repr__(self) -> str:
        return (
            f"PlacementConstraints(pinned={len(self._pinned)}, "
            f"forbidden={len(self._forbidden)})"
        )


class DeploymentProblem:
    """A frozen, validated node-deployment problem instance.

    Args:
        graph: the application communication graph.
        costs: measured pairwise link costs over the allocated instances.
        objective: deployment cost function to minimise.
        constraints: optional placement constraints.
        metadata: free-form JSON-serializable annotations carried along with
            the problem (template name, tenant, provenance).  Metadata never
            influences solving, fingerprints or compilation caching; it
            does participate in ``==`` so annotated problems stay
            distinguishable.

    Raises:
        InfeasibleProblemError: if there are fewer instances than nodes.
        InvalidGraphError: if the longest-path objective is requested on a
            cyclic graph.
        InvalidDeploymentError: if the constraints are inconsistent.
    """

    __slots__ = ("_graph", "_costs", "_objective", "_constraints", "_metadata",
                 "_fingerprint", "_instance_key", "_compiled_constraints")

    def __init__(self, graph: CommunicationGraph, costs: CostMatrix,
                 objective: Objective = Objective.LONGEST_LINK,
                 constraints: Optional[PlacementConstraints] = None,
                 metadata: Optional[Mapping[str, Any]] = None):
        if not isinstance(objective, Objective):
            objective = Objective(objective)
        if costs.num_instances < graph.num_nodes:
            raise InfeasibleProblemError(
                f"{graph.num_nodes} application nodes cannot be deployed on "
                f"{costs.num_instances} instances"
            )
        if objective is Objective.LONGEST_PATH and not graph.is_dag():
            raise InvalidGraphError(
                "longest-path objective requires an acyclic communication graph"
            )
        if constraints is not None and constraints.is_empty:
            constraints = None
        if constraints is not None:
            constraints.validate(graph, costs)
        self._graph = graph
        self._costs = costs
        self._objective = objective
        self._constraints = constraints
        self._metadata: Dict[str, Any] = dict(metadata or {})
        self._fingerprint: Optional[str] = None
        self._instance_key: Optional[str] = None
        self._compiled_constraints: Optional[CompiledConstraints] = None

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #

    @property
    def graph(self) -> CommunicationGraph:
        """The application communication graph."""
        return self._graph

    @property
    def costs(self) -> CostMatrix:
        """The measured pairwise cost matrix."""
        return self._costs

    @property
    def objective(self) -> Objective:
        """The deployment cost function to minimise."""
        return self._objective

    @property
    def constraints(self) -> Optional[PlacementConstraints]:
        """Placement constraints, or ``None`` when unconstrained."""
        return self._constraints

    @property
    def metadata(self) -> Mapping[str, Any]:
        """Read-only view of the problem metadata."""
        return MappingProxyType(self._metadata)

    @property
    def num_nodes(self) -> int:
        """Number of application nodes."""
        return self._graph.num_nodes

    @property
    def num_instances(self) -> int:
        """Number of allocated instances."""
        return self._costs.num_instances

    # ------------------------------------------------------------------ #
    # Engine access and evaluation
    # ------------------------------------------------------------------ #

    def compiled(self) -> CompiledProblem:
        """The shared compiled evaluation engine for this instance.

        Compilations are cached process-wide per ``(graph, costs)`` object
        pair (see :func:`repro.core.evaluation.compile_problem`), so every
        consumer of this problem object reuses one lowering.
        """
        return compile_problem(self._graph, self._costs)

    def compiled_constraints(self) -> Optional[CompiledConstraints]:
        """The constraints lowered onto the compiled engine, built once.

        Returns ``None`` for unconstrained problems.  The compiled view
        (allowed mask + per-node allowed-index arrays) is cached on the
        problem — like :meth:`compiled`, all solvers working on one problem
        object share a single lowering — and is covered by
        :meth:`fingerprint` through the constraints it derives from.
        """
        if self._constraints is None:
            return None
        if self._compiled_constraints is None:
            self._compiled_constraints = self._constraints.compile(
                self.compiled())
        return self._compiled_constraints

    def evaluate(self, plan: DeploymentPlan) -> float:
        """Deployment cost of ``plan`` under this problem's objective."""
        return self.compiled().evaluate_plan(plan, self._objective)

    def default_plan(self) -> DeploymentPlan:
        """The provider-order baseline deployment the paper compares against."""
        return provider_order_plan(self._graph.nodes, self._costs.instance_ids)

    def check_plan(self, plan: DeploymentPlan) -> None:
        """Validate that ``plan`` covers the graph and honours constraints."""
        if not plan.covers(self._graph):
            raise InvalidDeploymentError("plan does not cover the graph")
        if self._constraints is not None:
            violations = self._constraints.violations(plan)
            if violations:
                raise InvalidDeploymentError(
                    "plan violates placement constraints: "
                    + "; ".join(violations)
                )

    # ------------------------------------------------------------------ #
    # Identity
    # ------------------------------------------------------------------ #

    def instance_key(self) -> str:
        """Content hash of the ``(graph, costs)`` pair.

        Two problems with equal instance keys describe the same graph and
        cost data (regardless of objective, constraints or metadata), so a
        single :class:`CompiledProblem` can serve both — this is the key the
        batch advisor session deduplicates compilations on.
        """
        if self._instance_key is None:
            digest = hashlib.sha256()
            digest.update(repr(self._graph.nodes).encode())
            digest.update(repr(self._graph.edges).encode())
            digest.update(repr(self._costs.instance_ids).encode())
            digest.update(self._costs.as_array().tobytes())
            self._instance_key = digest.hexdigest()
        return self._instance_key

    def fingerprint(self) -> str:
        """Content hash of everything that influences solving.

        Extends :meth:`instance_key` with the objective and constraints;
        metadata is deliberately excluded.
        """
        if self._fingerprint is None:
            digest = hashlib.sha256()
            digest.update(self.instance_key().encode())
            digest.update(self._objective.value.encode())
            if self._constraints is not None:
                digest.update(repr(self._constraints.to_dict()).encode())
            self._fingerprint = digest.hexdigest()
        return self._fingerprint

    def revise(self, costs: CostMatrix,
               metadata: Optional[Mapping[str, Any]] = None
               ) -> "DeploymentProblem":
        """Build this problem under a revised cost matrix, reusing the lowering.

        The live re-deployment pipeline's entry point for cost drift: when
        the revised matrix covers the same instances in the same order —
        the graph and allocation are unchanged, only measured latencies
        moved — the shared :class:`CompiledProblem` is *refreshed in
        place* (:meth:`CompiledProblem.refresh_costs`): all graph-side
        index arrays, level groups and the compiled constraints view are
        preserved, only the dense cost array and the cost-derived bound
        caches are replaced.  No re-lowering, no re-validation of the
        constraint structure.

        The revised problem has a new :meth:`instance_key` /
        :meth:`fingerprint` (the costs changed); the original problem
        object remains structurally valid, but its compiled engine is
        considered superseded — asking it to compile again lowers a fresh
        engine for the old costs.

        Args:
            costs: the revised cost matrix.
            metadata: optional replacement metadata; the original
                problem's metadata is carried over when omitted.

        Returns:
            A new validated :class:`DeploymentProblem`; ``self`` when
            ``costs`` is the very matrix this problem already holds.
        """
        if costs is self._costs:
            return self
        revised = DeploymentProblem(
            self._graph, costs, objective=self._objective,
            constraints=self._constraints,
            metadata=self._metadata if metadata is None else metadata,
        )
        if costs.instance_ids == self._costs.instance_ids:
            engine = peek_compiled(self._graph, self._costs)
            if engine is not None:
                engine.refresh_costs(costs)
                # The constraints view is indexed against that same engine
                # object and is cost-independent, so it migrates as-is.
                revised._compiled_constraints = self._compiled_constraints
        return revised

    def rebound(self, graph: CommunicationGraph,
                costs: CostMatrix) -> "DeploymentProblem":
        """Re-express this problem over canonical graph / costs objects.

        Used by the advisor session to make content-equal problems share the
        process-wide compilation cache (which is keyed on object identity).
        The caller guarantees content equality, so validation is skipped —
        both this problem and the canonical pair were validated when they
        were constructed, and re-running the acyclicity / constraint checks
        on every cache hit would defeat the cache.
        """
        if graph is self._graph and costs is self._costs:
            return self
        clone = object.__new__(DeploymentProblem)
        clone._graph = graph
        clone._costs = costs
        clone._objective = self._objective
        clone._constraints = self._constraints
        clone._metadata = dict(self._metadata)
        clone._fingerprint = self._fingerprint
        clone._instance_key = self._instance_key
        # The compiled view is indexed against the clone's own engine
        # (canonical graph / costs), so it cannot be carried over.
        clone._compiled_constraints = None
        return clone

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable representation of the full problem."""
        payload: Dict[str, Any] = {
            "version": PROBLEM_SCHEMA_VERSION,
            "graph": self._graph.to_dict(),
            "costs": self._costs.to_dict(),
            "objective": self._objective.value,
        }
        if self._constraints is not None:
            payload["constraints"] = self._constraints.to_dict()
        if self._metadata:
            payload["metadata"] = dict(self._metadata)
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "DeploymentProblem":
        """Rebuild a problem from :meth:`to_dict` output."""
        if not isinstance(payload, Mapping):
            raise ClouDiAError(
                f"problem payload must be a JSON object, got "
                f"{type(payload).__name__}"
            )
        version = payload.get("version", PROBLEM_SCHEMA_VERSION)
        if version != PROBLEM_SCHEMA_VERSION:
            raise ClouDiAError(
                f"unsupported problem schema version {version!r} "
                f"(this library reads version {PROBLEM_SCHEMA_VERSION})"
            )
        missing = [key for key in ("graph", "costs", "objective")
                   if key not in payload]
        if missing:
            raise ClouDiAError(f"problem payload misses keys {missing}")
        constraints = None
        if payload.get("constraints") is not None:
            constraints = PlacementConstraints.from_dict(payload["constraints"])
        return cls(
            graph=CommunicationGraph.from_dict(payload["graph"]),
            costs=CostMatrix.from_dict(payload["costs"]),
            objective=Objective(payload["objective"]),
            constraints=constraints,
            metadata=payload.get("metadata"),
        )

    # ------------------------------------------------------------------ #

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DeploymentProblem):
            return NotImplemented
        return (self.fingerprint() == other.fingerprint()
                and self._metadata == other._metadata)

    def __hash__(self) -> int:
        return hash(self.fingerprint())

    def __repr__(self) -> str:
        suffix = "" if self._constraints is None else ", constrained"
        return (
            f"DeploymentProblem(nodes={self.num_nodes}, "
            f"instances={self.num_instances}, "
            f"objective={self._objective.value}{suffix})"
        )
