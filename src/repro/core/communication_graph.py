"""Communication graphs and the templates ClouDiA ships for common patterns.

A :class:`CommunicationGraph` captures the ``talks(i, j)`` relation of
Definition 3 in the paper: a directed graph over application nodes whose
edges are the communication links that matter for performance.  The paper
notes that writing out ``O(|N|^2)`` links by hand is tedious, so ClouDiA
provides templates for common structures (meshes, trees, bipartite graphs);
this module implements those templates plus a few extras used by the
examples and benchmarks.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple

import networkx as nx

from .errors import InvalidGraphError
from .types import Edge, NodeId, make_rng


class CommunicationGraph:
    """Directed graph of application nodes with ``talks`` edges.

    Nodes are integers.  Edges are directed; applications with symmetric
    communication (e.g. neighbor exchanges in a BSP simulation) should
    include both directions, which the mesh templates below do.

    The graph is immutable after construction, which lets solvers cache
    degree information and adjacency structures safely.
    """

    def __init__(self, nodes: Iterable[NodeId], edges: Iterable[Edge]):
        node_list = list(nodes)
        if len(node_list) != len(set(node_list)):
            raise InvalidGraphError("duplicate application nodes in graph")
        if not node_list:
            raise InvalidGraphError("communication graph must have at least one node")

        node_set = set(node_list)
        edge_list: List[Edge] = []
        seen: Set[Edge] = set()
        for i, j in edges:
            if i == j:
                raise InvalidGraphError(f"self-loop on node {i} is not allowed")
            if i not in node_set or j not in node_set:
                raise InvalidGraphError(f"edge ({i}, {j}) refers to unknown node")
            if (i, j) in seen:
                continue
            seen.add((i, j))
            edge_list.append((i, j))

        self._nodes: Tuple[NodeId, ...] = tuple(node_list)
        self._edges: Tuple[Edge, ...] = tuple(edge_list)
        self._succ: Dict[NodeId, List[NodeId]] = {n: [] for n in node_list}
        self._pred: Dict[NodeId, List[NodeId]] = {n: [] for n in node_list}
        for i, j in edge_list:
            self._succ[i].append(j)
            self._pred[j].append(i)
        self._neighbors: Dict[NodeId, Tuple[NodeId, ...]] = {
            n: tuple(sorted(set(self._succ[n]) | set(self._pred[n]))) for n in node_list
        }

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #

    @property
    def nodes(self) -> Tuple[NodeId, ...]:
        """All application nodes, in insertion order."""
        return self._nodes

    @property
    def edges(self) -> Tuple[Edge, ...]:
        """All directed ``talks`` edges."""
        return self._edges

    @property
    def num_nodes(self) -> int:
        """Number of application nodes."""
        return len(self._nodes)

    @property
    def num_edges(self) -> int:
        """Number of directed edges."""
        return len(self._edges)

    def has_node(self, node: NodeId) -> bool:
        """Return ``True`` if ``node`` is part of the graph."""
        return node in self._succ

    def has_edge(self, i: NodeId, j: NodeId) -> bool:
        """Return ``True`` if ``talks(i, j)`` holds."""
        return i in self._succ and j in self._succ[i]

    def successors(self, node: NodeId) -> Tuple[NodeId, ...]:
        """Nodes that ``node`` sends messages to."""
        return tuple(self._succ[node])

    def predecessors(self, node: NodeId) -> Tuple[NodeId, ...]:
        """Nodes that send messages to ``node``."""
        return tuple(self._pred[node])

    def neighbors(self, node: NodeId) -> Tuple[NodeId, ...]:
        """Union of successors and predecessors (undirected neighborhood)."""
        return self._neighbors[node]

    def out_degree(self, node: NodeId) -> int:
        """Number of outgoing edges of ``node``."""
        return len(self._succ[node])

    def in_degree(self, node: NodeId) -> int:
        """Number of incoming edges of ``node``."""
        return len(self._pred[node])

    def degree(self, node: NodeId) -> int:
        """Number of distinct neighbors of ``node`` (undirected degree)."""
        return len(self._neighbors[node])

    def undirected_edges(self) -> Tuple[Edge, ...]:
        """Edges with direction collapsed, each pair reported once as (min, max)."""
        undirected = {(min(i, j), max(i, j)) for i, j in self._edges}
        return tuple(sorted(undirected))

    # ------------------------------------------------------------------ #
    # Structure queries
    # ------------------------------------------------------------------ #

    def is_dag(self) -> bool:
        """Return ``True`` if the directed graph has no cycles.

        The longest-path objective (LPNDP) is only defined on acyclic
        communication graphs; callers should check this before using it.
        """
        return nx.is_directed_acyclic_graph(self.to_networkx())

    def is_connected(self) -> bool:
        """Return ``True`` if the underlying undirected graph is connected."""
        return nx.is_connected(self.to_networkx().to_undirected())

    def topological_order(self) -> List[NodeId]:
        """Return a topological ordering of the nodes.

        Raises:
            InvalidGraphError: if the graph contains a cycle.
        """
        try:
            return list(nx.topological_sort(self.to_networkx()))
        except nx.NetworkXUnfeasible as exc:
            raise InvalidGraphError("graph has a cycle; no topological order") from exc

    def sources(self) -> List[NodeId]:
        """Nodes with no incoming edges."""
        return [n for n in self._nodes if not self._pred[n]]

    def sinks(self) -> List[NodeId]:
        """Nodes with no outgoing edges."""
        return [n for n in self._nodes if not self._succ[n]]

    def to_networkx(self) -> nx.DiGraph:
        """Return an equivalent :class:`networkx.DiGraph` (copy)."""
        graph = nx.DiGraph()
        graph.add_nodes_from(self._nodes)
        graph.add_edges_from(self._edges)
        return graph

    def relabeled(self, mapping: Dict[NodeId, NodeId]) -> "CommunicationGraph":
        """Return a copy with node identifiers replaced through ``mapping``."""
        missing = [n for n in self._nodes if n not in mapping]
        if missing:
            raise InvalidGraphError(f"relabel mapping misses nodes {missing}")
        nodes = [mapping[n] for n in self._nodes]
        edges = [(mapping[i], mapping[j]) for i, j in self._edges]
        return CommunicationGraph(nodes, edges)

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #

    def to_dict(self) -> Dict[str, List]:
        """JSON-serializable representation (nodes and directed edges)."""
        return {
            "nodes": list(self._nodes),
            "edges": [[i, j] for i, j in self._edges],
        }

    @classmethod
    def from_dict(cls, payload) -> "CommunicationGraph":
        """Rebuild a graph from :meth:`to_dict` output.

        Node and edge order are preserved exactly, so a round-tripped graph
        compiles to the same index arrays as the original.
        """
        try:
            nodes = payload["nodes"]
            edges = payload["edges"]
        except (KeyError, TypeError) as exc:
            raise InvalidGraphError(
                "graph payload must contain 'nodes' and 'edges'"
            ) from exc
        return cls(nodes, [(i, j) for i, j in edges])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CommunicationGraph):
            return NotImplemented
        return set(self._nodes) == set(other._nodes) and set(self._edges) == set(other._edges)

    def __hash__(self) -> int:
        return hash((frozenset(self._nodes), frozenset(self._edges)))

    def __repr__(self) -> str:
        return f"CommunicationGraph(nodes={self.num_nodes}, edges={self.num_edges})"

    # ------------------------------------------------------------------ #
    # Templates (Sect. 3.3: "communication graph templates for certain
    # common graph structures such as meshes or bipartite graphs")
    # ------------------------------------------------------------------ #

    @classmethod
    def from_edges(cls, edges: Iterable[Edge]) -> "CommunicationGraph":
        """Build a graph whose node set is exactly the endpoints of ``edges``."""
        edge_list = list(edges)
        nodes = sorted({n for edge in edge_list for n in edge})
        return cls(nodes, edge_list)

    @classmethod
    def mesh_2d(cls, rows: int, cols: int, wrap: bool = False) -> "CommunicationGraph":
        """2-D mesh used by the behavioral simulation workload.

        Every cell talks to its four axis-aligned neighbors in both
        directions.  With ``wrap=True`` the mesh becomes a torus.
        """
        if rows <= 0 or cols <= 0:
            raise InvalidGraphError("mesh dimensions must be positive")
        nodes = list(range(rows * cols))
        edges: List[Edge] = []

        def nid(r: int, c: int) -> int:
            """Node id of grid cell ``(r, c)`` in row-major order."""
            return r * cols + c

        for r in range(rows):
            for c in range(cols):
                right = (r, c + 1)
                down = (r + 1, c)
                if wrap:
                    right = (r, (c + 1) % cols)
                    down = ((r + 1) % rows, c)
                for rr, cc in (right, down):
                    if 0 <= rr < rows and 0 <= cc < cols and (rr, cc) != (r, c):
                        a, b = nid(r, c), nid(rr, cc)
                        edges.append((a, b))
                        edges.append((b, a))
        return cls(nodes, edges)

    @classmethod
    def mesh_3d(cls, nx_: int, ny: int, nz: int) -> "CommunicationGraph":
        """3-D mesh with bidirectional axis-aligned neighbor edges."""
        if nx_ <= 0 or ny <= 0 or nz <= 0:
            raise InvalidGraphError("mesh dimensions must be positive")
        nodes = list(range(nx_ * ny * nz))
        edges: List[Edge] = []

        def nid(x: int, y: int, z: int) -> int:
            """Node id of grid cell ``(x, y, z)`` in row-major order."""
            return (x * ny + y) * nz + z

        for x in range(nx_):
            for y in range(ny):
                for z in range(nz):
                    for dx, dy, dz in ((1, 0, 0), (0, 1, 0), (0, 0, 1)):
                        xx, yy, zz = x + dx, y + dy, z + dz
                        if xx < nx_ and yy < ny and zz < nz:
                            a, b = nid(x, y, z), nid(xx, yy, zz)
                            edges.append((a, b))
                            edges.append((b, a))
        return cls(nodes, edges)

    @classmethod
    def ring(cls, n: int, bidirectional: bool = True) -> "CommunicationGraph":
        """Ring of ``n`` nodes; each node talks to its successor (and predecessor)."""
        if n < 2:
            raise InvalidGraphError("ring needs at least two nodes")
        edges: List[Edge] = []
        for i in range(n):
            j = (i + 1) % n
            edges.append((i, j))
            if bidirectional:
                edges.append((j, i))
        return cls(range(n), edges)

    @classmethod
    def star(cls, n_leaves: int) -> "CommunicationGraph":
        """Star with node 0 at the center talking to every leaf bidirectionally."""
        if n_leaves < 1:
            raise InvalidGraphError("star needs at least one leaf")
        edges: List[Edge] = []
        for leaf in range(1, n_leaves + 1):
            edges.append((0, leaf))
            edges.append((leaf, 0))
        return cls(range(n_leaves + 1), edges)

    @classmethod
    def complete(cls, n: int) -> "CommunicationGraph":
        """Complete directed graph on ``n`` nodes (all-to-all communication)."""
        if n < 2:
            raise InvalidGraphError("complete graph needs at least two nodes")
        edges = [(i, j) for i in range(n) for j in range(n) if i != j]
        return cls(range(n), edges)

    @classmethod
    def hypercube(cls, dimension: int) -> "CommunicationGraph":
        """Boolean hypercube of the given dimension with bidirectional edges."""
        if dimension < 1:
            raise InvalidGraphError("hypercube dimension must be >= 1")
        n = 1 << dimension
        edges: List[Edge] = []
        for i in range(n):
            for bit in range(dimension):
                j = i ^ (1 << bit)
                edges.append((i, j))
        return cls(range(n), edges)

    @classmethod
    def aggregation_tree(cls, branching: int, depth: int,
                         leaves_to_root: bool = True) -> "CommunicationGraph":
        """Complete ``branching``-ary aggregation tree of the given ``depth``.

        Used by the synthetic aggregation query workload (Sect. 6.1.2).  By
        default edges point from leaves towards the root, matching the flow
        of partial aggregates; the longest path then models query response
        time.  Node 0 is the root.
        """
        if branching < 1 or depth < 1:
            raise InvalidGraphError("branching and depth must be >= 1")
        nodes = [0]
        edges: List[Edge] = []
        previous_level = [0]
        next_id = 1
        for _ in range(depth):
            current_level = []
            for parent in previous_level:
                for _ in range(branching):
                    child = next_id
                    next_id += 1
                    nodes.append(child)
                    current_level.append(child)
                    if leaves_to_root:
                        edges.append((child, parent))
                    else:
                        edges.append((parent, child))
            previous_level = current_level
        return cls(nodes, edges)

    @classmethod
    def bipartite(cls, num_frontends: int, num_storage: int,
                  bidirectional: bool = True) -> "CommunicationGraph":
        """Complete bipartite graph between front-end and storage nodes.

        Used by the key-value store workload (Sect. 6.1.3).  Front-end nodes
        are ``0 .. num_frontends - 1``; storage nodes follow.
        """
        if num_frontends < 1 or num_storage < 1:
            raise InvalidGraphError("both sides of the bipartite graph need nodes")
        frontends = list(range(num_frontends))
        storage = list(range(num_frontends, num_frontends + num_storage))
        edges: List[Edge] = []
        for f in frontends:
            for s in storage:
                edges.append((f, s))
                if bidirectional:
                    edges.append((s, f))
        return cls(frontends + storage, edges)

    @classmethod
    def random_graph(cls, n: int, edge_probability: float,
                     seed: int | None = None) -> "CommunicationGraph":
        """Erdos-Renyi style random directed graph (no self loops)."""
        if n < 2:
            raise InvalidGraphError("random graph needs at least two nodes")
        if not 0.0 <= edge_probability <= 1.0:
            raise InvalidGraphError("edge probability must be in [0, 1]")
        rng = make_rng(seed)
        edges = [
            (i, j)
            for i in range(n)
            for j in range(n)
            if i != j and rng.random() < edge_probability
        ]
        return cls(range(n), edges)

    @classmethod
    def random_dag(cls, n: int, edge_probability: float,
                   seed: int | None = None) -> "CommunicationGraph":
        """Random DAG: edges only go from lower to higher node id."""
        if n < 2:
            raise InvalidGraphError("random DAG needs at least two nodes")
        if not 0.0 <= edge_probability <= 1.0:
            raise InvalidGraphError("edge probability must be in [0, 1]")
        rng = make_rng(seed)
        edges = [
            (i, j)
            for i in range(n)
            for j in range(i + 1, n)
            if rng.random() < edge_probability
        ]
        return cls(range(n), edges)


def augment_with_dummy_nodes(graph: CommunicationGraph,
                             num_instances: int) -> CommunicationGraph:
    """Pad a graph with isolated dummy nodes until it has ``num_instances`` nodes.

    The MIP encodings in Sect. 4.1 require ``|V| = |S|``; dummy nodes have no
    edges and therefore never constrain the objective.  Dummy node ids are
    allocated above the current maximum node id.
    """
    if num_instances < graph.num_nodes:
        raise InvalidGraphError(
            "cannot pad graph: fewer instances than application nodes"
        )
    if num_instances == graph.num_nodes:
        return graph
    next_id = max(graph.nodes) + 1
    dummies = list(range(next_id, next_id + (num_instances - graph.num_nodes)))
    return CommunicationGraph(list(graph.nodes) + dummies, graph.edges)
