"""Deployment cost functions: longest link and longest path (Sect. 3.3).

The two objective classes the paper optimises:

* ``LONGEST_LINK`` (Class 1, LLNDP) — the maximum link cost over the edges of
  the communication graph, modelling barrier-synchronised HPC applications.
* ``LONGEST_PATH`` (Class 2, LPNDP) — the maximum total cost of a directed
  path through an acyclic communication graph, modelling service-call chains
  in web portals and aggregation trees.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .communication_graph import CommunicationGraph
from .cost_matrix import CostMatrix
from .deployment import DeploymentPlan
from .errors import InvalidDeploymentError, InvalidGraphError
from .types import Edge, NodeId


class Objective(enum.Enum):
    """Which deployment cost function a problem instance minimises."""

    LONGEST_LINK = "longest_link"
    LONGEST_PATH = "longest_path"


@dataclass(frozen=True)
class CriticalElement:
    """The element of the communication graph that realises the deployment cost.

    For the longest-link objective this is a single edge; for the longest-path
    objective it is the full critical path.
    """

    cost: float
    edges: Tuple[Edge, ...]


def _check_coverage(plan: DeploymentPlan, graph: CommunicationGraph) -> None:
    if not plan.covers(graph):
        missing = [n for n in graph.nodes if n not in plan.nodes]
        raise InvalidDeploymentError(f"plan does not map nodes {missing[:5]}")


def longest_link_cost(plan: DeploymentPlan, graph: CommunicationGraph,
                      costs: CostMatrix) -> float:
    """Deployment cost ``C_D^LL``: the most expensive communication link used.

    Returns 0.0 for graphs without edges (an isolated node never pays any
    network cost).
    """
    _check_coverage(plan, graph)
    worst = 0.0
    for i, j in graph.edges:
        value = costs.cost(plan.instance_for(i), plan.instance_for(j))
        if value > worst:
            worst = value
    return worst


def worst_link(plan: DeploymentPlan, graph: CommunicationGraph,
               costs: CostMatrix) -> CriticalElement:
    """The edge realising the longest-link cost together with its cost."""
    _check_coverage(plan, graph)
    worst_cost = -1.0
    worst_edge: Optional[Edge] = None
    for i, j in graph.edges:
        value = costs.cost(plan.instance_for(i), plan.instance_for(j))
        if value > worst_cost:
            worst_cost = value
            worst_edge = (i, j)
    if worst_edge is None:
        return CriticalElement(cost=0.0, edges=())
    return CriticalElement(cost=worst_cost, edges=(worst_edge,))


def longest_path_cost(plan: DeploymentPlan, graph: CommunicationGraph,
                      costs: CostMatrix) -> float:
    """Deployment cost ``C_D^LP``: the cost of the most expensive directed path.

    The communication graph must be acyclic.  Costs add up along a path, as
    the paper assumes causally related messages are sent sequentially along
    each path.

    Raises:
        InvalidGraphError: if the graph has a cycle.
    """
    return critical_path(plan, graph, costs).cost


def critical_path(plan: DeploymentPlan, graph: CommunicationGraph,
                  costs: CostMatrix) -> CriticalElement:
    """The critical (most expensive) path under the given deployment.

    Uses a topological-order dynamic program: ``t[i]`` is the cost of the
    most expensive path ending at node ``i``.  The returned element lists the
    edges of one critical path in order from its source to its sink.
    """
    _check_coverage(plan, graph)
    if not graph.is_dag():
        raise InvalidGraphError("longest-path objective requires an acyclic graph")

    order = graph.topological_order()
    best: Dict[NodeId, float] = {n: 0.0 for n in graph.nodes}
    parent: Dict[NodeId, Optional[NodeId]] = {n: None for n in graph.nodes}
    for i in order:
        for j in graph.successors(i):
            edge_cost = costs.cost(plan.instance_for(i), plan.instance_for(j))
            if best[i] + edge_cost > best[j]:
                best[j] = best[i] + edge_cost
                parent[j] = i

    if not graph.edges:
        return CriticalElement(cost=0.0, edges=())

    end = max(best, key=lambda n: best[n])
    path_nodes: List[NodeId] = [end]
    while parent[path_nodes[-1]] is not None:
        path_nodes.append(parent[path_nodes[-1]])
    path_nodes.reverse()
    edges = tuple(zip(path_nodes[:-1], path_nodes[1:]))
    return CriticalElement(cost=best[end], edges=edges)


def deployment_cost(plan: DeploymentPlan, graph: CommunicationGraph,
                    costs: CostMatrix, objective: Objective) -> float:
    """Evaluate a deployment plan under the requested objective."""
    if objective is Objective.LONGEST_LINK:
        return longest_link_cost(plan, graph, costs)
    if objective is Objective.LONGEST_PATH:
        return longest_path_cost(plan, graph, costs)
    raise ValueError(f"unknown objective {objective!r}")


def improvement_ratio(baseline_cost: float, optimized_cost: float) -> float:
    """Relative improvement of an optimised cost over a baseline cost.

    Returns a value in ``[0, 1]``; e.g. 0.30 means the optimised deployment
    is 30 % cheaper.  A zero baseline yields zero improvement by convention.
    """
    if baseline_cost <= 0:
        return 0.0
    return max(0.0, (baseline_cost - optimized_cost) / baseline_cost)
