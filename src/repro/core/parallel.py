"""Process-pool batch evaluation over shared-memory engine state.

The thread :class:`~repro.core.evaluation.ParallelEvaluator` scales the
batch kernels across cores because the big gathers release the GIL — but
everything outside those gathers (chunk bookkeeping, ufunc setup, the
reduceat scatter) still serialises on one interpreter.
:class:`ProcessPoolEvaluator` removes that ceiling: the compiled engine's
index and cost arrays are exported once into POSIX shared memory, worker
processes attach zero-copy and run the *same* serial kernels over row
chunks, and only the per-chunk assignment rows and the (k,) result vector
cross the process boundary.

Lifecycle and correctness invariants:

- **Compile once, attach everywhere.**  A :class:`_SharedEngine` is
  created lazily per ``CompiledProblem`` (keyed by object identity) and
  exports the cost matrix, edge endpoint arrays and topological node
  levels into named shared-memory segments.  Workers cache their
  attachments in a small per-process LRU, so a long solve attaches each
  segment once, not once per batch.
- **Epoch handshake.**  ``CompiledProblem.refresh_costs`` bumps
  ``cost_epoch``; the parent rewrites the shared cost bytes in place and
  stamps the new epoch into a shared int64 header *before* dispatching.
  Every task carries the epoch it was scored against and the worker
  verifies it against the header — a stale worker can never score against
  old costs silently.
- **Bit-identical results.**  Workers run the unbound
  ``CompiledProblem._batch_longest_link`` / ``_batch_longest_path``
  kernels over the shared arrays, chunks split with the same
  :func:`~repro.core.evaluation.balanced_chunk_bounds` as the thread
  evaluator, and ``max`` over float64 is exact — so serial, threaded and
  process results are equal bit-for-bit in any chunking.
- **Fallback ladder.**  When fork or shared memory is unavailable (or
  segment export fails at runtime) the evaluator silently degrades to the
  thread :class:`ParallelEvaluator`; batches under the ``min_cells``
  cutoff take the serial path; a crashed worker pool is discarded, the
  call is served serially, and the next call rebuilds the pool.
- **No litter.**  Segments are unlinked when their problem is garbage
  collected, when :func:`close_shared_engines` runs, and at interpreter
  exit — the test suite asserts ``/dev/shm`` is clean in a session
  teardown check.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import threading
import uuid
import weakref
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .deployment import DeploymentPlan
from .errors import InvalidGraphError
from .evaluation import (
    CompiledProblem,
    ParallelEvaluator,
    balanced_chunk_bounds,
    delta_counters,
    resolve_workers,
    thread_parallel_counters,
    thread_pool_size,
)
from .objectives import Objective

try:  # pragma: no cover - present on every supported platform
    from multiprocessing import shared_memory as _shm
except ImportError:  # pragma: no cover - exotic builds without _posixshmem
    _shm = None  # type: ignore[assignment]

__all__ = [
    "PROCESS_MIN_CELLS",
    "ParallelStats",
    "ProcessPoolEvaluator",
    "close_shared_engines",
    "parallel_stats",
    "process_pool_unavailable_reason",
    "reset_parallel_stats",
    "shutdown_process_pool",
]

#: Minimum gathered cells (batch rows x edges) before a batch is worth
#: dispatching to worker processes.  Crossing a process boundary pickles
#: the chunk rows and forks pay page-table costs, so the cutoff sits well
#: above the thread evaluator's.
PROCESS_MIN_CELLS = 262_144


def process_pool_unavailable_reason() -> Optional[str]:
    """Why process-pool evaluation cannot run here, or ``None`` if it can.

    Shared-memory attachment by name relies on fork-start workers sharing
    the parent's resource tracker (a spawn-start child would tear the
    segments down from its own tracker at exit); platforms without fork or
    without POSIX shared memory fall back to the thread evaluator.
    """
    if _shm is None:
        return "no-shared-memory"
    if "fork" not in multiprocessing.get_all_start_methods():
        return "no-fork"
    return None


# --------------------------------------------------------------------------- #
# Parent side: shared-memory export per compiled problem
# --------------------------------------------------------------------------- #

_STATS_LOCK = threading.Lock()
_PROC_PARALLEL_CALLS = 0
_PROC_SERIAL_CALLS = 0
_PROC_FALLBACK_CALLS = 0
_SHM_ATTACHES = 0
_SHM_REFRESHES = 0
_POOL_RECOVERIES = 0


def _count(name: str) -> None:
    global _PROC_PARALLEL_CALLS, _PROC_SERIAL_CALLS, _PROC_FALLBACK_CALLS
    global _SHM_ATTACHES, _SHM_REFRESHES, _POOL_RECOVERIES
    with _STATS_LOCK:
        if name == "parallel":
            _PROC_PARALLEL_CALLS += 1
        elif name == "serial":
            _PROC_SERIAL_CALLS += 1
        elif name == "fallback":
            _PROC_FALLBACK_CALLS += 1
        elif name == "attach":
            _SHM_ATTACHES += 1
        elif name == "refresh":
            _SHM_REFRESHES += 1
        elif name == "recovery":
            _POOL_RECOVERIES += 1


class _SharedEngine:
    """One compiled problem's arrays exported to named shared memory.

    Owns the segments: creating the engine copies the parent arrays in,
    :meth:`refresh` rewrites the cost bytes in place under the epoch
    handshake, and :meth:`close` unlinks everything (idempotent; wired to
    ``weakref.finalize`` on the problem and to :mod:`atexit`).
    """

    def __init__(self, problem: CompiledProblem):
        token = f"repro-{os.getpid()}-{uuid.uuid4().hex[:8]}"
        self.token = token
        self.epoch = problem.cost_epoch
        self.lock = threading.Lock()
        self._segments: List[Any] = []
        self._closed = False
        try:
            node_level = problem._node_levels()
            has_levels = True
        except InvalidGraphError:
            node_level = None
            has_levels = False
        meta: Dict[str, Any] = {
            "token": token,
            "num_nodes": problem.num_nodes,
            "num_instances": problem.num_instances,
            "num_edges": problem.num_edges,
            "has_levels": has_levels,
        }
        try:
            self._header = self._export(
                "hdr", np.asarray([self.epoch], dtype=np.int64), meta)
            self._cost = self._export(
                "cost", np.ascontiguousarray(problem.cost_array,
                                             dtype=np.float64), meta)
            self._export("esrc", np.ascontiguousarray(problem.edge_src,
                                                      dtype=np.int64), meta)
            self._export("edst", np.ascontiguousarray(problem.edge_dst,
                                                      dtype=np.int64), meta)
            if has_levels:
                self._export("lvl", np.ascontiguousarray(node_level,
                                                         dtype=np.int64), meta)
        except Exception:
            self.close()
            raise
        self.meta = meta
        _count("attach")

    def _export(self, key: str, array: np.ndarray,
                meta: Dict[str, Any]) -> Optional[np.ndarray]:
        """Copy ``array`` into a named segment; record its layout in ``meta``.

        Returns the parent's view into the segment (``None`` for empty
        arrays, which travel by shape alone — POSIX shared memory cannot
        be zero-sized).
        """
        meta[f"{key}_shape"] = array.shape
        meta[f"{key}_dtype"] = array.dtype.str
        if array.size == 0:
            meta[f"{key}_name"] = None
            return None
        segment = _shm.SharedMemory(
            create=True, size=array.nbytes, name=f"{self.token}-{key}")
        self._segments.append(segment)
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf)
        view[...] = array
        meta[f"{key}_name"] = segment.name
        return view

    def sync(self, problem: CompiledProblem) -> None:
        """Propagate a ``refresh_costs`` into the shared segment.

        Rewrites the cost bytes, then stamps the new epoch into the shared
        header — tasks dispatched afterwards carry the new epoch, so a
        worker observing the expected epoch has, by the write ordering
        plus the dispatch happens-before, the refreshed costs in view.
        """
        if problem.cost_epoch == self.epoch:
            return
        with self.lock:
            if problem.cost_epoch == self.epoch:
                return
            if self._cost is not None:
                self._cost[...] = problem.cost_array
            self._header[0] = problem.cost_epoch
            self.epoch = problem.cost_epoch
            _count("refresh")

    def close(self) -> None:
        """Close and unlink every segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for segment in self._segments:
            try:
                segment.close()
                segment.unlink()
            except OSError:  # pragma: no cover - already unlinked elsewhere
                pass
        self._segments = []


_ENGINE_LOCK = threading.Lock()
_SHARED_ENGINES: Dict[int, _SharedEngine] = {}


def _drop_engine(key: int, engine: _SharedEngine) -> None:
    with _ENGINE_LOCK:
        if _SHARED_ENGINES.get(key) is engine:
            del _SHARED_ENGINES[key]
    engine.close()


def _shared_engine_for(problem: CompiledProblem) -> _SharedEngine:
    """The (lazily created) shared-memory export of ``problem``.

    Keyed on object identity with a ``weakref.finalize`` tying segment
    lifetime to the problem's — identical problems re-use one export, and
    a collected problem can never leave segments behind.
    """
    key = id(problem)
    with _ENGINE_LOCK:
        engine = _SHARED_ENGINES.get(key)
        if engine is None:
            engine = _SharedEngine(problem)
            _SHARED_ENGINES[key] = engine
            weakref.finalize(problem, _drop_engine, key, engine)
        return engine


def close_shared_engines() -> None:
    """Unlink every live shared-memory export (tests, atexit)."""
    with _ENGINE_LOCK:
        engines = list(_SHARED_ENGINES.values())
        _SHARED_ENGINES.clear()
    for engine in engines:
        engine.close()


# --------------------------------------------------------------------------- #
# Worker side: attach and score with the serial kernels
# --------------------------------------------------------------------------- #

#: Per-worker bound on cached attachments; long-lived workers serving many
#: distinct problems close their least-recently-used mappings.
_WORKER_CACHE_ENTRIES = 8

_WORKER_ENGINES: "OrderedDict[str, _WorkerEngine]" = OrderedDict()


class _WorkerEngine:
    """A worker process's zero-copy view of a :class:`_SharedEngine`.

    Borrows the serial batch kernels from :class:`CompiledProblem`
    unbound, so the arithmetic (gather order, chunk budget, reduction
    order) is the parent engine's to the letter — the attribute surface
    below is exactly what those kernels touch.
    """

    # The unbound serial kernels; ``self`` only needs the attributes set
    # in __init__ plus _level_groups().
    _batch_longest_link = CompiledProblem._batch_longest_link
    _batch_longest_path = CompiledProblem._batch_longest_path

    def __init__(self, meta: Dict[str, Any]):
        self._handles: List[Any] = []
        self.num_nodes = meta["num_nodes"]
        self.num_instances = meta["num_instances"]
        self.num_edges = meta["num_edges"]
        self._header = self._attach("hdr", meta)
        self.cost_array = self._attach("cost", meta)
        self.edge_src = self._attach("esrc", meta)
        self.edge_dst = self._attach("edst", meta)
        self._node_level = self._attach("lvl", meta) if meta["has_levels"] else None
        self._levels: Optional[tuple] = None

    def _attach(self, key: str, meta: Dict[str, Any]) -> np.ndarray:
        name = meta[f"{key}_name"]
        shape = tuple(meta[f"{key}_shape"])
        dtype = np.dtype(meta[f"{key}_dtype"])
        if name is None:
            return np.empty(shape, dtype=dtype)
        segment = _shm.SharedMemory(name=name)
        self._handles.append(segment)
        return np.ndarray(shape, dtype=dtype, buffer=segment.buf)

    def check_epoch(self, expected: int) -> None:
        if int(self._header[0]) != expected:
            raise RuntimeError(
                f"stale shared-memory cost epoch: worker sees "
                f"{int(self._header[0])}, task expects {expected}"
            )

    def _level_groups(self) -> tuple:
        # Same construction as CompiledProblem._level_groups over the
        # shared arrays (np.unique is sorted, _LevelGroup sorts stably),
        # so the relaxation visits edges in the identical order.
        if self._levels is None:
            from .evaluation import _LevelGroup
            level = self._node_level
            src_levels = level[self.edge_src]
            groups = []
            for lvl in np.unique(src_levels):
                sel = src_levels == lvl
                groups.append(_LevelGroup(self.edge_src[sel],
                                          self.edge_dst[sel]))
            self._levels = tuple(groups)
        return self._levels

    def close(self) -> None:
        self._levels = None
        for handle in self._handles:
            try:
                handle.close()
            except OSError:  # pragma: no cover - defensive
                pass
        self._handles = []


def _worker_engine(meta: Dict[str, Any]) -> "_WorkerEngine":
    token = meta["token"]
    engine = _WORKER_ENGINES.get(token)
    if engine is None:
        engine = _WorkerEngine(meta)
        _WORKER_ENGINES[token] = engine
        while len(_WORKER_ENGINES) > _WORKER_CACHE_ENTRIES:
            _, evicted = _WORKER_ENGINES.popitem(last=False)
            evicted.close()
    else:
        _WORKER_ENGINES.move_to_end(token)
    return engine


def _eval_chunk(meta: Dict[str, Any], epoch: int, block: np.ndarray,
                objective_value: str) -> np.ndarray:
    """Top-level task: attach (cached), verify the epoch, run the kernel."""
    engine = _worker_engine(meta)
    engine.check_epoch(epoch)
    objective = Objective(objective_value)
    if objective is Objective.LONGEST_LINK:
        return engine._batch_longest_link(block)
    if objective is Objective.LONGEST_PATH:
        return engine._batch_longest_path(block)
    raise ValueError(f"unknown objective {objective!r}")


# --------------------------------------------------------------------------- #
# The shared worker pool
# --------------------------------------------------------------------------- #

_POOL_LOCK = threading.Lock()
_POOL: Optional[ProcessPoolExecutor] = None
_POOL_WORKERS = 0


def _shared_process_pool(workers: int) -> ProcessPoolExecutor:
    """The process-wide fork worker pool, grown to ``workers`` processes.

    Mirrors the thread pool's grow-only policy: one pool serves every
    evaluator, and a wider evaluator never deadlocks behind a narrower
    sizing.  Fork start keeps worker attachment under the parent's
    resource tracker (see :func:`process_pool_unavailable_reason`).
    """
    global _POOL, _POOL_WORKERS
    with _POOL_LOCK:
        if _POOL is None or _POOL_WORKERS < workers:
            if _POOL is not None:
                _POOL.shutdown(wait=False, cancel_futures=True)
            _POOL = ProcessPoolExecutor(
                max_workers=workers,
                mp_context=multiprocessing.get_context("fork"),
            )
            _POOL_WORKERS = workers
        return _POOL


def _discard_pool(broken: ProcessPoolExecutor) -> None:
    """Drop a crashed pool so the next parallel call rebuilds a fresh one."""
    global _POOL, _POOL_WORKERS
    with _POOL_LOCK:
        if _POOL is broken:
            _POOL = None
            _POOL_WORKERS = 0
    broken.shutdown(wait=False, cancel_futures=True)
    _count("recovery")


def process_pool_size() -> int:
    """Current size of the shared worker-process pool (0 before first use)."""
    with _POOL_LOCK:
        return _POOL_WORKERS


def shutdown_process_pool() -> None:
    """Tear down the shared worker pool (tests, atexit)."""
    global _POOL, _POOL_WORKERS
    with _POOL_LOCK:
        pool = _POOL
        _POOL = None
        _POOL_WORKERS = 0
    if pool is not None:
        pool.shutdown(wait=True, cancel_futures=True)


def _shutdown_all() -> None:  # pragma: no cover - exercised at interpreter exit
    shutdown_process_pool()
    close_shared_engines()


atexit.register(_shutdown_all)


# --------------------------------------------------------------------------- #
# The public evaluator
# --------------------------------------------------------------------------- #


class ProcessPoolEvaluator:
    """Multi-process batch evaluation on top of a :class:`CompiledProblem`.

    The process counterpart of :class:`ParallelEvaluator`, selected
    through the ``workers`` knob as ``"procs"`` / ``"procs:auto"`` /
    ``"procs:N"``.  See the module docstring for the shared-memory
    lifecycle, epoch handshake and bit-identity argument.

    Args:
        problem: the compiled problem whose kernels do the scoring.
        workers: worker-process count — ``None`` / ``"auto"`` (or a
            ``"procs[:N]"`` spec) for one per available CPU, or an
            explicit positive int.
        min_cells: serial-fallback cutoff in gathered cells
            (:data:`PROCESS_MIN_CELLS` by default).
    """

    def __init__(self, problem: CompiledProblem,
                 workers: int | str | None = None,
                 min_cells: int = PROCESS_MIN_CELLS):
        self.problem = problem
        self.workers = resolve_workers(workers)
        self.min_cells = max(0, int(min_cells))
        self.parallel_calls = 0
        self.serial_calls = 0
        self._fallback: Optional[ParallelEvaluator] = None
        self._fallback_reason = process_pool_unavailable_reason()
        if self._fallback_reason is not None:
            self._fallback = ParallelEvaluator(
                problem, workers=self.workers, min_cells=self.min_cells)

    @property
    def fallback_reason(self) -> Optional[str]:
        """Why this evaluator degraded to threads, or ``None`` if it didn't."""
        return self._fallback_reason

    def _degrade(self, reason: str) -> ParallelEvaluator:
        self._fallback_reason = reason
        self._fallback = ParallelEvaluator(
            self.problem, workers=self.workers, min_cells=self.min_cells)
        return self._fallback

    def evaluate_batch(self, assignments: np.ndarray,
                       objective: Objective) -> np.ndarray:
        """Evaluate a ``(k, n)`` assignment array across worker processes.

        Bit-identical to :meth:`CompiledProblem.evaluate_batch` (which it
        delegates to per chunk — and entirely, for batches under the
        serial cutoff or after a fallback to threads).

        Raises:
            ValueError: on a mis-shaped batch or unknown objective.
            InvalidGraphError: for the longest-path objective on a cyclic
                graph (raised in the parent, never shipped to a worker).
        """
        if self._fallback is not None:
            _count("fallback")
            return self._fallback.evaluate_batch(assignments, objective)
        problem = self.problem
        assignments = np.asarray(assignments)
        if assignments.ndim != 2 or assignments.shape[1] != problem.num_nodes:
            raise ValueError(
                f"assignments must have shape (k, {problem.num_nodes})"
            )
        if objective not in (Objective.LONGEST_LINK, Objective.LONGEST_PATH):
            raise ValueError(f"unknown objective {objective!r}")
        rows = assignments.shape[0]
        if (self.workers <= 1 or rows < 2
                or rows * max(1, problem.num_edges) < self.min_cells):
            self.serial_calls += 1
            _count("serial")
            return problem.evaluate_batch(assignments, objective)
        if objective is Objective.LONGEST_PATH:
            problem._level_groups()  # reject cyclic graphs before fan-out
        try:
            engine = _shared_engine_for(problem)
        except OSError as exc:
            # Shared memory exhausted or unavailable at runtime: degrade
            # permanently for this evaluator.
            _count("fallback")
            return self._degrade(f"shm-error:{exc}").evaluate_batch(
                assignments, objective)
        engine.sync(problem)
        pool = _shared_process_pool(self.workers)
        try:
            futures = [
                pool.submit(_eval_chunk, engine.meta, engine.epoch,
                            np.ascontiguousarray(assignments[start:stop]),
                            objective.value)
                for start, stop in balanced_chunk_bounds(rows, self.workers)
            ]
            results = [future.result() for future in futures]
        except BrokenProcessPool:
            # A worker died (OOM kill, signal).  The segments stay owned
            # by the parent — nothing leaks — so serve this call serially
            # and let the next one rebuild a fresh pool.
            _discard_pool(pool)
            self.serial_calls += 1
            _count("serial")
            return problem.evaluate_batch(assignments, objective)
        self.parallel_calls += 1
        _count("parallel")
        return np.concatenate(results)

    def evaluate_plans(self, plans: Sequence[DeploymentPlan],
                       objective: Objective) -> np.ndarray:
        """Lower a sequence of plans once, then batch-evaluate in parallel."""
        if not plans:
            return np.empty(0)
        return self.evaluate_batch(self.problem.index_plans(plans), objective)

    def __repr__(self) -> str:
        mode = (f"fallback={self._fallback_reason!r}"
                if self._fallback is not None else "procs")
        return (
            f"ProcessPoolEvaluator(workers={self.workers}, "
            f"min_cells={self.min_cells}, {mode})"
        )


# --------------------------------------------------------------------------- #
# Telemetry
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class ParallelStats:
    """Process-wide counters of both parallel evaluation backends.

    Aggregated across every evaluator instance since process start (the
    evaluators themselves are created per solve), snapshot by
    :func:`parallel_stats` and surfaced through
    ``SessionStats.to_dict()`` / the serve ``/metrics`` endpoint.
    """

    thread_parallel_calls: int = 0
    thread_serial_calls: int = 0
    thread_pool_size: int = 0
    process_parallel_calls: int = 0
    process_serial_calls: int = 0
    process_fallback_calls: int = 0
    process_pool_size: int = 0
    shm_attaches: int = 0
    shm_refreshes: int = 0
    pool_recoveries: int = 0
    #: Incremental-evaluator telemetry (see
    #: :func:`repro.core.evaluation.delta_counters`): single-move candidate
    #: scorings and commits, plus ``peek_many`` batch calls and the total
    #: moves they scored — the observability hook for neighborhood
    #: batching (``batch_peeked_moves / batch_peek_calls`` is the realized
    #: mean block size).
    delta_peeks: int = 0
    delta_commits: int = 0
    batch_peek_calls: int = 0
    batch_peeked_moves: int = 0

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable snapshot (consumed by telemetry exporters)."""
        return {
            "thread_parallel_calls": self.thread_parallel_calls,
            "thread_serial_calls": self.thread_serial_calls,
            "thread_pool_size": self.thread_pool_size,
            "process_parallel_calls": self.process_parallel_calls,
            "process_serial_calls": self.process_serial_calls,
            "process_fallback_calls": self.process_fallback_calls,
            "process_pool_size": self.process_pool_size,
            "shm_attaches": self.shm_attaches,
            "shm_refreshes": self.shm_refreshes,
            "pool_recoveries": self.pool_recoveries,
            "delta_peeks": self.delta_peeks,
            "delta_commits": self.delta_commits,
            "batch_peek_calls": self.batch_peek_calls,
            "batch_peeked_moves": self.batch_peeked_moves,
        }


def parallel_stats() -> ParallelStats:
    """Snapshot the process-wide parallel-evaluation counters."""
    thread_parallel, thread_serial = thread_parallel_counters()
    peeks, commits, batch_calls, batch_moves = delta_counters()
    with _STATS_LOCK:
        return ParallelStats(
            thread_parallel_calls=thread_parallel,
            thread_serial_calls=thread_serial,
            thread_pool_size=thread_pool_size(),
            process_parallel_calls=_PROC_PARALLEL_CALLS,
            process_serial_calls=_PROC_SERIAL_CALLS,
            process_fallback_calls=_PROC_FALLBACK_CALLS,
            process_pool_size=process_pool_size(),
            shm_attaches=_SHM_ATTACHES,
            shm_refreshes=_SHM_REFRESHES,
            pool_recoveries=_POOL_RECOVERIES,
            delta_peeks=peeks,
            delta_commits=commits,
            batch_peek_calls=batch_calls,
            batch_peeked_moves=batch_moves,
        )


def reset_parallel_stats() -> None:
    """Zero the process-side counters (test hygiene; pools stay up)."""
    global _PROC_PARALLEL_CALLS, _PROC_SERIAL_CALLS, _PROC_FALLBACK_CALLS
    global _SHM_ATTACHES, _SHM_REFRESHES, _POOL_RECOVERIES
    import repro.core.evaluation as _evaluation
    with _STATS_LOCK:
        _PROC_PARALLEL_CALLS = _PROC_SERIAL_CALLS = _PROC_FALLBACK_CALLS = 0
        _SHM_ATTACHES = _SHM_REFRESHES = _POOL_RECOVERIES = 0
    with _evaluation._THREAD_COUNTER_LOCK:
        _evaluation._THREAD_PARALLEL_CALLS = 0
        _evaluation._THREAD_SERIAL_CALLS = 0
    _evaluation._DELTA_PEEKS = 0
    _evaluation._DELTA_COMMITS = 0
    _evaluation._BATCH_PEEK_CALLS = 0
    _evaluation._BATCH_PEEKED_MOVES = 0
