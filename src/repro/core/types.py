"""Common type aliases and small value objects shared across the library.

The paper distinguishes between *application nodes* (the logical components
of the tenant's distributed application) and *instances* (the virtual
machines allocated in the public cloud).  Both are identified by integers in
this library; the aliases below make signatures self-documenting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

#: Identifier of a logical application node (a vertex of the communication graph).
NodeId = int

#: Identifier of an allocated cloud instance (a virtual machine).
InstanceId = int

#: A directed communication edge between two application nodes.
Edge = Tuple[NodeId, NodeId]

#: A directed link between two allocated instances.
Link = Tuple[InstanceId, InstanceId]


def make_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a NumPy random generator from a seed or pass one through.

    Accepting either a seed or an existing generator lets deterministic
    experiments share a single stream while unit tests pass plain integers.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


@dataclass(frozen=True)
class TimeBudget:
    """Wall-clock style budget expressed in seconds.

    The solvers in :mod:`repro.solvers` measure their own elapsed time and
    stop once ``seconds`` have passed.  A ``None`` value means unlimited.
    """

    seconds: float | None = None

    def is_unlimited(self) -> bool:
        """Return ``True`` when no time limit applies."""
        return self.seconds is None
