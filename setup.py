"""Shim so legacy editable installs work in offline environments without wheel.

All project metadata lives in ``pyproject.toml``; this file only exists so
``pip install -e . --no-build-isolation --no-use-pep517`` (the path taken
when the ``wheel`` package is unavailable) has a ``setup.py`` to call.
"""

from setuptools import setup

setup()
